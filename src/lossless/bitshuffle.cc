#include "lossless/bitshuffle.hh"

#include <cstring>
#include <stdexcept>

#include "device/launch.hh"
#include "device/simd.hh"

namespace szi::lossless {

namespace {
/// Byte offset of block b: every block before the tail is full (2048 bytes).
std::size_t block_offset(std::size_t b) { return b * kShuffleBlock * 2; }

// The AVX2 block kernels hardcode this geometry (dev::kBlockElems).
static_assert(kShuffleBlock == 1024, "AVX2 block kernels assume 1024");
}  // namespace

void bitshuffle16(std::span<const std::uint16_t> in,
                  std::span<std::uint8_t> out) {
  if (out.size() != bitshuffle16_size(in.size()))
    throw std::invalid_argument("bitshuffle16: bad output size");
  const std::size_t nblocks = dev::ceil_div(in.size(), kShuffleBlock);
  dev::launch_linear(
      nblocks,
      [&](std::size_t b) {
        const std::size_t begin = b * kShuffleBlock;
        const std::size_t len = std::min(kShuffleBlock, in.size() - begin);
        const std::size_t plane_bytes = (len + 7) / 8;
        std::uint8_t* planes = out.data() + block_offset(b);
        if (len == kShuffleBlock && dev::has_avx2()) {
          dev::bitshuffle16_block_avx2(in.data() + begin, planes);
          return;
        }
        std::memset(planes, 0, 16 * plane_bytes);
        for (std::size_t i = 0; i < len; ++i) {
          const std::uint16_t v = in[begin + i];
          for (unsigned bit = 0; bit < 16; ++bit)
            if ((v >> bit) & 1u)
              planes[bit * plane_bytes + i / 8] |=
                  static_cast<std::uint8_t>(1u << (i % 8));
        }
      },
      1);
}

void bitunshuffle16(std::span<const std::uint8_t> in,
                    std::span<std::uint16_t> out) {
  if (in.size() != bitshuffle16_size(out.size()))
    throw std::invalid_argument("bitunshuffle16: bad input size");
  const std::size_t nblocks = dev::ceil_div(out.size(), kShuffleBlock);
  dev::launch_linear(
      nblocks,
      [&](std::size_t b) {
        const std::size_t begin = b * kShuffleBlock;
        const std::size_t len = std::min(kShuffleBlock, out.size() - begin);
        const std::size_t plane_bytes = (len + 7) / 8;
        const std::uint8_t* planes = in.data() + block_offset(b);
        if (len == kShuffleBlock && dev::has_avx2()) {
          dev::bitunshuffle16_block_avx2(planes, out.data() + begin);
          return;
        }
        for (std::size_t i = 0; i < len; ++i) {
          std::uint16_t v = 0;
          for (unsigned bit = 0; bit < 16; ++bit)
            if ((planes[bit * plane_bytes + i / 8] >> (i % 8)) & 1u)
              v = static_cast<std::uint16_t>(v | (1u << bit));
          out[begin + i] = v;
        }
      },
      1);
}

}  // namespace szi::lossless
