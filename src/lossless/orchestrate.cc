#include "lossless/orchestrate.hh"

#include <algorithm>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/bytes.hh"
#include "huffman/histogram.hh"
#include "lossless/rle.hh"

namespace szi::lossless {

const char* method_name(Method m) {
  switch (m) {
    case Method::Lzss:
      return "lzss";
    case Method::ZeroRle:
      return "zero-rle";
    case Method::Bitshuffle:
      return "bitshuffle";
  }
  return "unknown";
}

namespace {

/// Gathers the strided sample into ws memory, or returns the segment whole
/// when it is small enough that sampling would not save anything.
std::span<const std::byte> gather_sample(std::span<const std::byte> seg,
                                         dev::Workspace& ws) {
  const std::size_t n = seg.size();
  if (n <= 2 * kSampleMin) return seg;
  const std::size_t target = std::clamp(n / 64, kSampleMin, kSampleMax);
  const std::size_t nchunks = target / kSampleChunk;
  // The sample budget splits into strided chunks over the prefix plus one
  // contiguous tail window (match history for the dictionary-coder costs —
  // see the geometry note in the header). A window shorter than
  // kSampleTailChunks carries no more history than a lone strided chunk and
  // only skews coverage, so the split engages only when the budget affords
  // a full window; small budgets keep pure strided coverage of the whole
  // segment (tail_start == n, step == n / nchunks, as before).
  const std::size_t tail_chunks =
      nchunks >= 2 * kSampleTailChunks ? kSampleTailChunks : 0;
  const std::size_t tail_bytes = tail_chunks * kSampleChunk;
  const std::size_t tail_start =
      tail_bytes > 0 ? (n - tail_bytes) & ~std::size_t{1} : n;
  const std::size_t nstrided = nchunks - tail_chunks;
  // tail_start >= nstrided * kSampleChunk in every clamp regime (the prefix
  // is always far larger than the sample drawn from it: nstrided chunks
  // total at most n/64 bytes and the tail claims at most 16 KiB of an
  // >= 2 MiB segment), so chunk c's even-aligned start (c*step) & ~1 leaves
  // the final strided chunk fully inside the prefix:
  // (nstrided-1)*step + kSampleChunk <= tail_start.
  const std::size_t step = tail_start / nstrided;
  auto buf = ws.make<std::byte>(nstrided * kSampleChunk + tail_bytes);
  for (std::size_t c = 0; c < nstrided; ++c) {
    const std::size_t start = (c * step) & ~std::size_t{1};
    std::memcpy(buf.data() + c * kSampleChunk, seg.data() + start,
                kSampleChunk);
  }
  if (tail_bytes > 0)
    std::memcpy(buf.data() + nstrided * kSampleChunk, seg.data() + tail_start,
                tail_bytes);
  return buf;
}

}  // namespace

Method choose_method(std::span<const std::byte> seg, LzssMode mode,
                     dev::Workspace& ws, ChoiceAudit* audit) {
  ChoiceAudit local;
  ChoiceAudit& a = audit ? *audit : local;
  a = ChoiceAudit{};
  if (seg.empty()) return Method::Lzss;

  const auto sample = gather_sample(seg, ws);
  a.sampled_bytes = sample.size();
  a.entropy_bits = huffman::byte_entropy(sample);
  if (a.entropy_bits > kEntropyShortcutBits) {
    a.entropy_shortcut = true;
    return Method::Lzss;
  }

  auto cost_of = [&](Method m) -> std::uint64_t {
    const auto t = method_transform(sample, m, ws);
    return lzss_compress(t, kLzssBlock, ws, mode).size();
  };
  const std::uint64_t lz = cost_of(Method::Lzss);
  const std::uint64_t rle = cost_of(Method::ZeroRle);
  const std::uint64_t bs = cost_of(Method::Bitshuffle);
  a.cost[static_cast<std::size_t>(Method::Lzss)] = lz;
  a.cost[static_cast<std::size_t>(Method::ZeroRle)] = rle;
  a.cost[static_cast<std::size_t>(Method::Bitshuffle)] = bs;

  // A transform needs its own margin over plain LZSS to win the segment
  // (bitshuffle's sampled advantage is biased high — see the margin docs in
  // the header); among transforms that clear their margin, the cheaper one
  // wins and ties go to the lower method id.
  const auto clears = [&](std::uint64_t cost, std::uint64_t margin) {
    return cost * 100 < lz * (100 - margin);
  };
  const bool rle_wins = clears(rle, kChooserMarginPct);
  const bool bs_wins = clears(bs, kChooserBitshuffleMarginPct);
  if (rle_wins && (!bs_wins || rle <= bs)) return Method::ZeroRle;
  if (bs_wins) return Method::Bitshuffle;
  return Method::Lzss;
}

Method resolve_method(MethodPolicy policy, std::span<const std::byte> seg,
                      LzssMode mode, dev::Workspace& ws, ChoiceAudit* audit) {
  switch (policy) {
    case MethodPolicy::Auto:
      return choose_method(seg, mode, ws, audit);
    case MethodPolicy::ForceLzss:
      return Method::Lzss;
    case MethodPolicy::ForceZeroRle:
      return Method::ZeroRle;
    case MethodPolicy::ForceBitshuffle:
      return Method::Bitshuffle;
  }
  return Method::Lzss;
}

std::span<const std::byte> method_transform(std::span<const std::byte> seg,
                                            Method m, dev::Workspace& ws) {
  switch (m) {
    case Method::Lzss:
      return seg;
    case Method::ZeroRle:
      return zero_rle_compress(seg, ws);
    case Method::Bitshuffle: {
      const std::size_t n = seg.size();
      const std::size_t ne = n / 2;
      // Archive bytes are unaligned; stage the even prefix into an aligned
      // u16 buffer before shuffling.
      auto elems = ws.make<std::uint16_t>(ne);
      if (ne > 0) std::memcpy(elems.data(), seg.data(), ne * 2);
      auto out = ws.make<std::byte>(bitshuffle_frame_size(n));
      bitshuffle16(elems, {reinterpret_cast<std::uint8_t*>(out.data()),
                           bitshuffle16_size(ne)});
      if (n & 1) out.back() = seg.back();
      return out;
    }
  }
  return seg;
}

void method_untransform(std::span<const std::byte> transformed, Method m,
                        std::span<std::byte> raw_out) {
  constexpr std::string_view kStage = "lossless-method";
  switch (m) {
    case Method::Lzss:
      if (transformed.size() != raw_out.size())
        throw core::CorruptArchive(kStage, 0,
                                   "raw payload size does not match segment");
      if (!raw_out.empty())
        std::memcpy(raw_out.data(), transformed.data(), raw_out.size());
      return;
    case Method::ZeroRle: {
      const auto raw = zero_rle_decompress(transformed);
      if (raw.size() != raw_out.size())
        throw core::CorruptArchive(
            kStage, 0, "zero-rle payload expands to the wrong size");
      if (!raw_out.empty())
        std::memcpy(raw_out.data(), raw.data(), raw.size());
      return;
    }
    case Method::Bitshuffle: {
      const std::size_t n = raw_out.size();
      if (transformed.size() != bitshuffle_frame_size(n))
        throw core::CorruptArchive(
            kStage, 0, "bitshuffle payload size does not match segment");
      const std::size_t ne = n / 2;
      std::vector<std::uint16_t> elems(ne);
      bitunshuffle16({reinterpret_cast<const std::uint8_t*>(transformed.data()),
                      bitshuffle16_size(ne)},
                     elems);
      if (ne > 0) std::memcpy(raw_out.data(), elems.data(), ne * 2);
      if (n & 1) raw_out.back() = transformed.back();
      return;
    }
  }
  throw core::CorruptArchive(kStage, 0, "unknown lossless method");
}

}  // namespace szi::lossless
