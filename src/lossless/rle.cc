#include "lossless/rle.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"

namespace szi::lossless {

namespace {
bool unit_is_zero(const std::byte* p, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i)
    if (p[i] != std::byte{0}) return false;
  return true;
}
}  // namespace

std::vector<std::byte> zero_rle_compress(std::span<const std::byte> data) {
  dev::Arena local;
  dev::Workspace ws(local);
  const auto s = zero_rle_compress(data, ws);
  return {s.begin(), s.end()};
}

std::span<const std::byte> zero_rle_compress(std::span<const std::byte> data,
                                             dev::Workspace& ws) {
  const std::size_t n = data.size();
  const std::size_t nunits = dev::ceil_div(n, kRleUnit);
  const std::size_t bitmap_bytes = (nunits + 7) / 8;
  auto nonzero = ws.make<char>(nunits);
  dev::launch_linear(
      nunits,
      [&](std::size_t u) {
        const std::size_t begin = u * kRleUnit;
        const std::size_t len = std::min(kRleUnit, n - begin);
        nonzero[u] = unit_is_zero(data.data() + begin, len) ? 0 : 1;
      },
      1 << 10);

  auto bitmap = ws.make<std::uint8_t>(bitmap_bytes);
  std::fill_n(bitmap.data(), bitmap_bytes, std::uint8_t{0});
  std::size_t kept_bytes = 0;
  for (std::size_t u = 0; u < nunits; ++u)
    if (nonzero[u]) {
      bitmap[u / 8] |= static_cast<std::uint8_t>(1u << (u % 8));
      kept_bytes += std::min(kRleUnit, n - u * kRleUnit);
    }

  auto out = ws.make<std::byte>(sizeof(std::uint64_t) + bitmap_bytes +
                                kept_bytes);
  std::byte* p = out.data();
  const std::uint64_t n64 = n;
  std::memcpy(p, &n64, sizeof(n64));
  p += sizeof(n64);
  std::memcpy(p, bitmap.data(), bitmap_bytes);
  p += bitmap_bytes;
  for (std::size_t u = 0; u < nunits; ++u)
    if (nonzero[u]) {
      const std::size_t begin = u * kRleUnit;
      const std::size_t len = std::min(kRleUnit, n - begin);
      std::memcpy(p, data.data() + begin, len);
      p += len;
    }
  return out;
}

std::vector<std::byte> zero_rle_decompress(std::span<const std::byte> data) {
  core::ByteReader rd(data, "zero-rle");
  const auto n64 = rd.read<std::uint64_t>();
  rd.guard_alloc(n64);
  const auto n = static_cast<std::size_t>(n64);
  // Division form: ceil_div's a+b-1 would wrap for n near 2^64.
  const std::size_t nunits = n / kRleUnit + (n % kRleUnit != 0 ? 1 : 0);
  const std::size_t bitmap_bytes = nunits / 8 + (nunits % 8 != 0 ? 1 : 0);
  if (rd.remaining() < bitmap_bytes) rd.fail("truncated bitmap");
  const auto* bitmap =
      reinterpret_cast<const std::uint8_t*>(rd.read_bytes(bitmap_bytes).data());
  std::size_t pos = rd.offset();

  std::vector<std::byte> out(n, std::byte{0});
  for (std::size_t u = 0; u < nunits; ++u) {
    if (!((bitmap[u / 8] >> (u % 8)) & 1u)) continue;
    const std::size_t begin = u * kRleUnit;
    const std::size_t len = std::min<std::size_t>(kRleUnit, n - begin);
    if (len > data.size() - pos)
      throw core::CorruptArchive("zero-rle", pos, "truncated payload");
    std::memcpy(out.data() + begin, data.data() + pos, len);
    pos += len;
  }
  return out;
}

}  // namespace szi::lossless
