// Zero-run-length byte codec: the zero-block removal stage of FZ-GPU's
// "dictionary encoding" (bitshuffled quant-codes are mostly zero bytes) and
// an ablation point against the LZSS de-redundancy pass.
//
// Format: units of 32 bytes; a bitmap marks non-zero units, which are stored
// verbatim — FZ-GPU's scheme at byte granularity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"

namespace szi::lossless {

inline constexpr std::size_t kRleUnit = 32;

[[nodiscard]] std::vector<std::byte> zero_rle_compress(
    std::span<const std::byte> data);

/// Workspace form: bitmap, unit flags, and the output stream come from the
/// pool (result valid until the Workspace resets). Byte-identical output.
[[nodiscard]] std::span<const std::byte> zero_rle_compress(
    std::span<const std::byte> data, dev::Workspace& ws);

/// Throws std::runtime_error on malformed streams.
[[nodiscard]] std::vector<std::byte> zero_rle_decompress(
    std::span<const std::byte> data);

}  // namespace szi::lossless
