// Bit-plane shuffle of 16-bit quant-codes — the first lossless stage of
// FZ-GPU [19]. Transposing a block of codes into bit planes turns
// "almost all codes identical" into "almost all planes all-zero", which the
// subsequent zero-block dictionary stage removes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"

namespace szi::lossless {

/// Elements per shuffle block (a GPU thread-block tile).
inline constexpr std::size_t kShuffleBlock = 1024;

/// Bytes produced when shuffling `n` elements: full blocks emit 2 bytes per
/// element; a tail block emits 16 planes of ceil(tail/8) bytes each.
[[nodiscard]] constexpr std::size_t bitshuffle16_size(std::size_t n) {
  const std::size_t full = n / kShuffleBlock;
  const std::size_t tail = n % kShuffleBlock;
  return full * kShuffleBlock * 2 + (tail ? 16 * ((tail + 7) / 8) : 0);
}

/// Shuffles `in` into bit-plane-major order per block; `out` must hold
/// exactly bitshuffle16_size(in.size()) bytes.
void bitshuffle16(std::span<const std::uint16_t> in, std::span<std::uint8_t> out);

/// Workspace convenience: shuffles into a pooled buffer (valid until the
/// Workspace resets) and returns it.
[[nodiscard]] inline std::span<std::uint8_t> bitshuffle16(
    std::span<const std::uint16_t> in, dev::Workspace& ws) {
  auto out = ws.make<std::uint8_t>(bitshuffle16_size(in.size()));
  bitshuffle16(in, out);
  return out;
}

/// Inverse; reconstructs out.size() elements.
void bitunshuffle16(std::span<const std::uint8_t> in,
                    std::span<std::uint16_t> out);

}  // namespace szi::lossless
