// Little bit-granular writer/reader used by the Huffman chunk kernels and
// the cuZFP embedded coder. MSB-first within each byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace szi::lossless {

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Appends the low `nbits` of `bits`, most significant first.
  void put(std::uint64_t bits, unsigned nbits) {
    while (nbits > 0) {
      const unsigned take = nbits < free_ ? nbits : free_;
      cur_ = static_cast<std::uint8_t>(
          cur_ | (((bits >> (nbits - take)) & ((1u << take) - 1))
                  << (free_ - take)));
      free_ -= take;
      nbits -= take;
      if (free_ == 0) flush_byte();
    }
  }

  /// Pads to a byte boundary with zero bits.
  void align() {
    if (free_ < 8) flush_byte();
  }

  [[nodiscard]] std::size_t bit_count() const {
    return out_.size() * 8 + (8 - free_);
  }

 private:
  void flush_byte() {
    out_.push_back(cur_);
    cur_ = 0;
    free_ = 8;
  }
  std::vector<std::uint8_t>& out_;
  std::uint8_t cur_ = 0;
  unsigned free_ = 8;
};

/// Buffered MSB-first bit reader. A 64-bit accumulator holds the next
/// `bits_` stream bits left-aligned (bit `pos_` of the stream sits in bit 63
/// of `acc_`); every mutation re-establishes `bits_ >= 56`, so `peek(<= 32)`
/// never touches memory and `get(<= 56)` is one shift plus one refill. The
/// refill is branch-light: while 8+ input bytes remain it is a single
/// unaligned 8-byte load. Reads past the end of the stream yield zero bits
/// and keep advancing `position()` — exactly like the byte-serial reader
/// this replaces, which the Huffman chunk-overrun check relies on.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in) : in_(in) { refill(); }

  /// Reads `nbits` (<= 56) MSB-first; reads past the end yield zero bits.
  [[nodiscard]] std::uint64_t get(unsigned nbits) {
    if (nbits == 0) return 0;
    const std::uint64_t v = acc_ >> (64 - nbits);
    consume(nbits);
    return v;
  }

  [[nodiscard]] unsigned get1() {
    const unsigned bit = static_cast<unsigned>(acc_ >> 63);
    consume(1);
    return bit;
  }

  /// Reads `nbits` (<= 32) MSB-first without advancing; past-the-end bits
  /// read as zero. Served straight from the accumulator: no loads.
  [[nodiscard]] std::uint32_t peek(unsigned nbits) const {
    if (nbits == 0) return 0;
    return static_cast<std::uint32_t>(acc_ >> (64 - nbits));
  }

  void skip(unsigned nbits) {
    while (nbits > 56) {
      consume(56);
      nbits -= 56;
    }
    consume(nbits);
  }

  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  /// Drops the top `nbits` (<= 56) from the accumulator; zeros shift in at
  /// the bottom, which is what makes past-end reads come back as zero.
  void consume(unsigned nbits) {
    acc_ <<= nbits;
    bits_ -= nbits;
    pos_ += nbits;
    refill();
  }

  void refill() {
    if (bits_ >= 57) return;
    if (in_.size() - byte_ >= 8) {
      // OR in a big-endian 8-byte window below the valid bits. Bits that
      // were already present are re-ORed with identical values (the byte
      // cursor only advances past fully-consumed bytes), so this is
      // idempotent; afterwards at least 56 bits are valid.
      acc_ |= load_be64(in_.data() + byte_) >> bits_;
      byte_ += (63 - bits_) >> 3;
      bits_ |= 56;
      return;
    }
    while (byte_ < in_.size() && bits_ < 57) {
      acc_ |= static_cast<std::uint64_t>(in_[byte_++]) << (56 - bits_);
      bits_ += 8;
    }
    // Input exhausted: the low bits of acc_ are already zero (consume
    // shifts zeros in), so declaring them valid makes past-end reads
    // yield zero bits for free.
    if (byte_ == in_.size()) bits_ = 64;
  }

  [[nodiscard]] static std::uint64_t load_be64(const std::uint8_t* p) {
    return (std::uint64_t{p[0]} << 56) | (std::uint64_t{p[1]} << 48) |
           (std::uint64_t{p[2]} << 40) | (std::uint64_t{p[3]} << 32) |
           (std::uint64_t{p[4]} << 24) | (std::uint64_t{p[5]} << 16) |
           (std::uint64_t{p[6]} << 8) | std::uint64_t{p[7]};
  }

  std::span<const std::uint8_t> in_;
  std::uint64_t acc_ = 0;   ///< next stream bits, left-aligned
  unsigned bits_ = 0;       ///< valid bit count in acc_ (>= 56 after refill)
  std::size_t byte_ = 0;    ///< first input byte not yet fully in acc_
  std::size_t pos_ = 0;     ///< consumed bit count (may exceed 8 * size)
};

}  // namespace szi::lossless
