// Little bit-granular writer/reader used by the Huffman chunk kernels and
// the cuZFP embedded coder. MSB-first within each byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace szi::lossless {

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Appends the low `nbits` of `bits`, most significant first.
  void put(std::uint64_t bits, unsigned nbits) {
    while (nbits > 0) {
      const unsigned take = nbits < free_ ? nbits : free_;
      cur_ = static_cast<std::uint8_t>(
          cur_ | (((bits >> (nbits - take)) & ((1u << take) - 1))
                  << (free_ - take)));
      free_ -= take;
      nbits -= take;
      if (free_ == 0) flush_byte();
    }
  }

  /// Pads to a byte boundary with zero bits.
  void align() {
    if (free_ < 8) flush_byte();
  }

  [[nodiscard]] std::size_t bit_count() const {
    return out_.size() * 8 + (8 - free_);
  }

 private:
  void flush_byte() {
    out_.push_back(cur_);
    cur_ = 0;
    free_ = 8;
  }
  std::vector<std::uint8_t>& out_;
  std::uint8_t cur_ = 0;
  unsigned free_ = 8;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in) : in_(in) {}

  /// Reads `nbits` (<= 57) MSB-first; reads past the end yield zero bits.
  [[nodiscard]] std::uint64_t get(unsigned nbits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | get1();
    return v;
  }

  [[nodiscard]] unsigned get1() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= in_.size()) {
      ++pos_;
      return 0;
    }
    const unsigned bit = (in_[byte] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  /// Reads `nbits` (<= 32) MSB-first without advancing; past-the-end bits
  /// read as zero. Word-based (5 byte loads), fueling table-driven decoders.
  [[nodiscard]] std::uint32_t peek(unsigned nbits) const {
    const std::size_t byte = pos_ >> 3;
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < 5; ++i) {
      const std::size_t b = byte + i;
      acc = (acc << 8) | (b < in_.size() ? in_[b] : 0u);
    }
    const unsigned off = static_cast<unsigned>(pos_ & 7);
    return static_cast<std::uint32_t>((acc >> (40 - off - nbits)) &
                                      ((std::uint64_t{1} << nbits) - 1));
  }

  void skip(unsigned nbits) { pos_ += nbits; }

  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace szi::lossless
