#include "predictor/lorenzo.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "huffman/histogram.hh"

namespace szi::predictor {

namespace {

/// Pre-quantized lattice value d_i = round(v_i / 2eb) in int64 (the paper's
/// ebx2 reciprocal multiply).
void prequantize_into(std::span<const float> data, double eb,
                      std::span<std::int64_t> d) {
  const double inv = 1.0 / (2.0 * eb);
  dev::launch_linear(
      data.size(),
      [&](std::size_t i) {
        d[i] = static_cast<std::int64_t>(
            std::llround(static_cast<double>(data[i]) * inv));
      },
      1 << 14);
}

/// The parallel predict+quantize pass. Every element of `codes` and every
/// escaped slot of `escaped` is written (escaped is only read at marker
/// positions), so unzeroed workspace inputs are safe.
///
/// Interior/rim split (the same treatment as the G-Interp tile pass; the
/// naive per-point-guarded formulation is retained in predictor/reference.cc
/// and tests/test_predictor_equiv.cc asserts byte-identical codes): which
/// Lorenzo stencil terms survive the low-boundary guards depends only on
/// (y > 0, z > 0) for a whole row and on x > 0 for its first element, so
/// each row runs one of four specialized bodies whose inner loop over x is
/// branch-free — full 3D stencil, the two 2D face stencils, and the 1D
/// origin row — with the x == 0 rim element peeled off in front.
/// One z-plane of the predict+quantize pass. `on_row(row, nx)` fires after
/// each completed row — a no-op in the plain kernel, the banked histogram
/// accumulation in the fused pipeline (counting while the row's codes are
/// still cache-hot).
template <typename OnRow>
void lorenzo_plane(std::span<const std::int64_t> d, const dev::Dim3& dims,
                   int radius, std::span<quant::Code> codes,
                   std::span<float> escaped, std::size_t z, OnRow&& on_row) {
  const auto nx = dims.x, ny = dims.y;
  const auto sy = static_cast<std::ptrdiff_t>(nx);
  const auto sz = static_cast<std::ptrdiff_t>(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    const std::size_t row = dev::linearize(dims, 0, y, z);
    const std::int64_t* dr = d.data() + row;
    const auto emit = [&](std::size_t x, std::int64_t q) {
      const std::size_t i = row + x;
      if (q <= -radius || q >= radius) {
        codes[i] = quant::kOutlierMarker;
        escaped[i] = static_cast<float>(q);
      } else {
        codes[i] = static_cast<quant::Code>(q + radius);
      }
    };
    if (y > 0 && z > 0) {  // interior rows: full 3D stencil
      emit(0, dr[0] - (dr[-sy] + dr[-sz] - dr[-sy - sz]));
      for (std::size_t x = 1; x < nx; ++x) {
        const std::int64_t* p = dr + x;
        const std::int64_t pred = p[-1] + p[-sy] + p[-sz] - p[-1 - sy] -
                                  p[-1 - sz] - p[-sy - sz] +
                                  p[-1 - sy - sz];
        emit(x, p[0] - pred);
      }
    } else if (y > 0) {  // z == 0 face (the whole field when 2D)
      emit(0, dr[0] - dr[-sy]);
      for (std::size_t x = 1; x < nx; ++x) {
        const std::int64_t* p = dr + x;
        emit(x, p[0] - (p[-1] + p[-sy] - p[-1 - sy]));
      }
    } else if (z > 0) {  // y == 0 face
      emit(0, dr[0] - dr[-sz]);
      for (std::size_t x = 1; x < nx; ++x) {
        const std::int64_t* p = dr + x;
        emit(x, p[0] - (p[-1] + p[-sz] - p[-1 - sz]));
      }
    } else {  // origin row: pure 1D
      emit(0, dr[0]);
      for (std::size_t x = 1; x < nx; ++x) emit(x, dr[x] - dr[x - 1]);
    }
    on_row(row, nx);
  }
}

void lorenzo_kernel(std::span<const std::int64_t> d, const dev::Dim3& dims,
                    int radius, std::span<quant::Code> codes,
                    std::span<float> escaped) {
  dev::launch_linear(
      dims.z,
      [&](std::size_t z) {
        lorenzo_plane(d, dims, radius, codes, escaped, z,
                      [](std::size_t, std::size_t) {});
      },
      1);
}

/// Fused predict+histogram: z-planes statically partitioned into contiguous
/// per-worker ranges (same worker sizing as the standalone histogram
/// kernel); each worker counts every row it emits into its private banked
/// histogram. Codes/escaped are identical to lorenzo_kernel and the folded
/// totals equal huffman::histogram(codes, nbins) exactly.
std::vector<std::uint32_t> lorenzo_kernel_fused(
    std::span<const std::int64_t> d, const dev::Dim3& dims, int radius,
    std::span<quant::Code> codes, std::span<float> escaped,
    dev::Workspace& ws) {
  const std::size_t nbins = 2 * static_cast<std::size_t>(radius);
  const std::size_t nworkers =
      std::min(huffman::histogram_workers(codes.size()),
               std::max<std::size_t>(dims.z, 1));
  const std::size_t per = dev::ceil_div(dims.z, nworkers);
  auto parts =
      ws.make<std::uint32_t>(nworkers * huffman::kHistogramBanks * nbins);
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h =
            parts.data() + w * huffman::kHistogramBanks * nbins;
        std::fill_n(h, huffman::kHistogramBanks * nbins, 0u);
        const std::size_t zb = w * per;
        const std::size_t ze = std::min(zb + per, dims.z);
        for (std::size_t z = zb; z < ze; ++z)
          lorenzo_plane(d, dims, radius, codes, escaped, z,
                        [&](std::size_t row, std::size_t nx) {
                          huffman::accumulate_banked(codes.data() + row, nx, h,
                                                     nbins);
                        });
      },
      1);
  return huffman::merge_histograms(
      parts, nworkers * huffman::kHistogramBanks, nbins);
}

void check_compress_args(std::span<const float> data, const dev::Dim3& dims,
                         double eb) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("lorenzo_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("lorenzo_compress: eb must be > 0");
}

}  // namespace

LorenzoOutput lorenzo_compress(std::span<const float> data,
                               const dev::Dim3& dims, double eb, int radius) {
  check_compress_args(data, dims, eb);

  std::vector<std::int64_t> d(data.size());
  prequantize_into(data, eb, d);
  LorenzoOutput out;
  out.codes.resize(data.size());
  // q values that escape the radius; gathered after the parallel pass.
  std::vector<float> escaped(data.size(), 0.0f);
  lorenzo_kernel(d, dims, radius, out.codes, escaped);
  out.outliers = quant::OutlierSet::gather(out.codes, escaped);
  return out;
}

LorenzoView lorenzo_compress(std::span<const float> data, const dev::Dim3& dims,
                             double eb, int radius, dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  auto d = ws.make<std::int64_t>(data.size());
  prequantize_into(data, eb, d);
  auto codes = ws.make<quant::Code>(data.size());
  auto escaped = ws.make<float>(data.size());
  lorenzo_kernel(d, dims, radius, codes, escaped);
  LorenzoView out;
  out.codes = codes;
  out.outliers = quant::gather_outliers<float>(codes, escaped, ws);
  return out;
}

LorenzoFused lorenzo_compress_fused(std::span<const float> data,
                                    const dev::Dim3& dims, double eb,
                                    int radius, dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  auto d = ws.make<std::int64_t>(data.size());
  prequantize_into(data, eb, d);
  auto codes = ws.make<quant::Code>(data.size());
  auto escaped = ws.make<float>(data.size());
  LorenzoFused out;
  out.histogram = lorenzo_kernel_fused(d, dims, radius, codes, escaped, ws);
  out.pred.codes = codes;
  out.pred.outliers = quant::gather_outliers<float>(codes, escaped, ws);
  return out;
}

std::vector<float> lorenzo_decompress(std::span<const quant::Code> codes,
                                      const quant::OutlierSet& outliers,
                                      const dev::Dim3& dims, double eb,
                                      int radius) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("lorenzo_decompress: size/dims mismatch");
  // Outlier indices come from the archive and index into q below.
  outliers.check_bounds(dims.volume(), "lorenzo");

  // Rebuild the q field (outlier q's were stored exactly as floats).
  std::vector<std::int64_t> q(codes.size());
  dev::launch_linear(
      codes.size(),
      [&](std::size_t i) {
        q[i] = codes[i] == quant::kOutlierMarker
                   ? 0
                   : static_cast<std::int64_t>(codes[i]) - radius;
      },
      1 << 14);
  dev::launch_linear(
      outliers.count(),
      [&](std::size_t k) {
        q[outliers.indices[k]] =
            static_cast<std::int64_t>(std::llround(outliers.values[k]));
      },
      1 << 12);

  // Invert the Lorenzo stencil: inclusive prefix sums along x, y, z. Each
  // pass is parallel across the other two dimensions (cuSZ's partial-sum
  // decompression kernels).
  const auto nx = dims.x, ny = dims.y, nz = dims.z;
  dev::launch_linear(
      ny * nz,
      [&](std::size_t yz) {
        std::int64_t* row = q.data() + yz * nx;
        for (std::size_t x = 1; x < nx; ++x) row[x] += row[x - 1];
      },
      4);
  if (ny > 1)
    dev::launch_linear(
        nz,
        [&](std::size_t z) {
          std::int64_t* plane = q.data() + z * nx * ny;
          for (std::size_t y = 1; y < ny; ++y)
            for (std::size_t x = 0; x < nx; ++x)
              plane[y * nx + x] += plane[(y - 1) * nx + x];
        },
        1);
  if (nz > 1)
    dev::launch_linear(
        ny,
        [&](std::size_t y) {
          for (std::size_t z = 1; z < nz; ++z) {
            std::int64_t* cur = q.data() + (z * ny + y) * nx;
            const std::int64_t* prev = q.data() + ((z - 1) * ny + y) * nx;
            for (std::size_t x = 0; x < nx; ++x) cur[x] += prev[x];
          }
        },
        1);

  std::vector<float> out(codes.size());
  const double twice_eb = 2.0 * eb;
  dev::launch_linear(
      out.size(),
      [&](std::size_t i) {
        out[i] = static_cast<float>(twice_eb * static_cast<double>(q[i]));
      },
      1 << 14);
  return out;
}

}  // namespace szi::predictor
