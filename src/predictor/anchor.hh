// Anchor-point handling (§V-A): one vertex per basic block is stored
// losslessly so every interpolation is confined between adjacent anchors and
// tiles become independent. In a 3D grid roughly 1/512 of the elements are
// anchors. Templated on the value type.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "device/dims.hh"
#include "device/launch.hh"

namespace szi::predictor {

/// Number of anchors along one axis of length `n` with stride `s`
/// (positions 0, s, 2s, ... < n).
[[nodiscard]] constexpr std::size_t anchor_count_1d(std::size_t n,
                                                    std::size_t s) {
  return n == 0 ? 0 : (n - 1) / s + 1;
}

/// Anchor grid dimensions for a field of `dims` with per-dim strides.
[[nodiscard]] constexpr dev::Dim3 anchor_dims(const dev::Dim3& dims,
                                              const dev::Dim3& stride) {
  return {anchor_count_1d(dims.x, stride.x), anchor_count_1d(dims.y, stride.y),
          anchor_count_1d(dims.z, stride.z)};
}

/// Gathers data[every stride-th point] into `anchors`, which must hold
/// anchor_dims(dims, stride).volume() elements (workspace-friendly form).
template <typename T>
void gather_anchors_into(std::span<const T> data, const dev::Dim3& dims,
                         const dev::Dim3& stride, std::span<T> anchors) {
  const dev::Dim3 ad = anchor_dims(dims, stride);
  dev::launch_linear(
      ad.z,
      [&](std::size_t az) {
        for (std::size_t ay = 0; ay < ad.y; ++ay)
          for (std::size_t ax = 0; ax < ad.x; ++ax)
            anchors[dev::linearize(ad, ax, ay, az)] = data[dev::linearize(
                dims, ax * stride.x, ay * stride.y, az * stride.z)];
      },
      1);
}

/// Gathers data[every stride-th point] into a dense anchor array.
template <typename T>
[[nodiscard]] std::vector<T> gather_anchors(std::span<const T> data,
                                            const dev::Dim3& dims,
                                            const dev::Dim3& stride) {
  std::vector<T> anchors(anchor_dims(dims, stride).volume());
  gather_anchors_into<T>(data, dims, stride, anchors);
  return anchors;
}

/// Writes anchors back to their grid positions in `out`.
template <typename T>
void scatter_anchors(std::span<const T> anchors, std::span<T> out,
                     const dev::Dim3& dims, const dev::Dim3& stride) {
  const dev::Dim3 ad = anchor_dims(dims, stride);
  dev::launch_linear(
      ad.z,
      [&](std::size_t az) {
        for (std::size_t ay = 0; ay < ad.y; ++ay)
          for (std::size_t ax = 0; ax < ad.x; ++ax)
            out[dev::linearize(dims, ax * stride.x, ay * stride.y,
                               az * stride.z)] =
                anchors[dev::linearize(ad, ax, ay, az)];
      },
      1);
}

}  // namespace szi::predictor
