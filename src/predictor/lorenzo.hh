// The Lorenzo predictor with cuSZ's dual-quantization (§III-A and [16]):
// values are first snapped to the 2eb lattice (pre-quantization), then the
// 1/2/3-D Lorenzo stencil runs on the lattice integers, which makes the
// prediction-quantization kernel fully parallel (predictions read
// pre-quantized *originals*, not reconstructions). Decompression inverts the
// stencil with one inclusive prefix-sum per dimension.
//
// This predictor is the compression core of the cuSZ / cuSZp / FZ-GPU
// baselines and cuSZ-i's point of comparison in Figs. 5 and 6.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/dims.hh"
#include "quant/outlier.hh"
#include "quant/quantizer.hh"

namespace szi::predictor {

struct LorenzoOutput {
  std::vector<quant::Code> codes;  ///< biased codes, one per element
  quant::OutlierSet outliers;      ///< values hold the escaped q (exact)
};

/// Workspace form: codes/outliers live in pooled memory and stay valid
/// until the Workspace resets.
struct LorenzoView {
  std::span<const quant::Code> codes;
  quant::OutlierViewT<float> outliers;
};

/// Pre-quantize + Lorenzo-predict + quantize. Throws if eb <= 0.
[[nodiscard]] LorenzoOutput lorenzo_compress(std::span<const float> data,
                                             const dev::Dim3& dims, double eb,
                                             int radius = quant::kDefaultRadius);
[[nodiscard]] LorenzoView lorenzo_compress(std::span<const float> data,
                                           const dev::Dim3& dims, double eb,
                                           int radius, dev::Workspace& ws);

/// Prediction output plus the quant-code histogram (2*radius bins) counted
/// inside the predict kernel itself — no separate read pass over `codes`.
/// Codes/outliers and the histogram are bit-identical to the unfused
/// lorenzo_compress + huffman::histogram pair.
struct LorenzoFused {
  LorenzoView pred;
  std::vector<std::uint32_t> histogram;
};

[[nodiscard]] LorenzoFused lorenzo_compress_fused(std::span<const float> data,
                                                  const dev::Dim3& dims,
                                                  double eb, int radius,
                                                  dev::Workspace& ws);

/// Inverse: scatter outlier q's, prefix-sum per dimension, scale by 2eb.
[[nodiscard]] std::vector<float> lorenzo_decompress(
    std::span<const quant::Code> codes, const quant::OutlierSet& outliers,
    const dev::Dim3& dims, double eb, int radius = quant::kDefaultRadius);

}  // namespace szi::predictor
