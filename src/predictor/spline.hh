// 1D interpolation splines of §V-B.1, evaluated on the (up to) four
// symmetric neighbors x_{n-3s}, x_{n-s}, x_{n+s}, x_{n+3s}.
//
// The four circumstances of Fig. 3:
//   4 neighbors  -> cubic (not-a-knot or natural, selected by auto-tuning)
//   3 neighbors  -> quadratic (left- or right-leaning form)
//   2 neighbors  -> linear
//   1 neighbor   -> nearest-neighbor copy
//
// Note: the paper prints the right-leaning quadratic as
// -3/8 b + 6/8 c - 1/8 d, whose weights sum to 1/4 — a typo. We use the SZ3
// form +3/8 b + 6/8 c - 1/8 d (weights sum to 1), which the paper cites as
// its derivation source [4].
//
// Everything is templated on the value type (f32/f64 pipelines share the
// formulas).
#pragma once

namespace szi::predictor {

/// Which 4-point cubic to use when all four neighbors are available. Both are
/// kept because "each can outperform the others on different datasets"
/// (§V-B.1); the auto-tuner picks per dimension.
enum class CubicKind { NotAKnot, Natural };

/// Cubic, not-a-knot boundary: -1/16 a + 9/16 b + 9/16 c - 1/16 d.
template <typename T>
[[nodiscard]] constexpr T cubic_nak(T a, T b, T c, T d) {
  return (-a + T{9} * b + T{9} * c - d) * (T{1} / T{16});
}

/// Cubic, natural boundary: -3/40 a + 23/40 b + 23/40 c - 3/40 d.
template <typename T>
[[nodiscard]] constexpr T cubic_natural(T a, T b, T c, T d) {
  return (T{-3} * a + T{23} * b + T{23} * c - T{3} * d) * (T{1} / T{40});
}

/// Quadratic using {x_{n-3s}, x_{n-s}, x_{n+s}}: -1/8 a + 6/8 b + 3/8 c.
template <typename T>
[[nodiscard]] constexpr T quad_left(T a, T b, T c) {
  return (-a + T{6} * b + T{3} * c) * (T{1} / T{8});
}

/// Quadratic using {x_{n-s}, x_{n+s}, x_{n+3s}}: 3/8 b + 6/8 c - 1/8 d.
template <typename T>
[[nodiscard]] constexpr T quad_right(T b, T c, T d) {
  return (T{3} * b + T{6} * c - d) * (T{1} / T{8});
}

/// Linear: (x_{n-s} + x_{n+s}) / 2.
template <typename T>
[[nodiscard]] constexpr T linear(T b, T c) {
  return (b + c) / T{2};
}

/// Availability-dispatched prediction for one target. ha..hd flag whether
/// each neighbor exists (inside the tile and the array); a..d are its values
/// (ignored when the flag is false).
template <typename T>
[[nodiscard]] constexpr T spline_predict(bool ha, T a, bool hb, T b, bool hc,
                                         T c, bool hd, T d, CubicKind kind) {
  if (hb && hc) {
    if (ha && hd)
      return kind == CubicKind::NotAKnot ? cubic_nak(a, b, c, d)
                                         : cubic_natural(a, b, c, d);
    if (ha) return quad_left(a, b, c);
    if (hd) return quad_right(b, c, d);
    return linear(b, c);
  }
  if (hb) return b;  // one-sided: nearest known neighbor
  if (hc) return c;
  if (ha) return a;
  if (hd) return d;
  return T{0};  // isolated point (degenerate grids); predict zero
}

}  // namespace szi::predictor
