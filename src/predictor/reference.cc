// See reference.hh: verbatim pre-optimization kernels, kept as the ground
// truth for the interior/rim equivalence tests. Do not optimize.
#include "predictor/reference.hh"

#include <array>
#include <cmath>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "predictor/anchor.hh"
#include "predictor/spline.hh"

namespace szi::predictor::reference {

namespace {

/// Largest closed-tile volume across the per-rank geometries (33*9*9).
constexpr std::size_t kMaxTileVolume = 33 * 9 * 9;

template <typename T>
struct TileView {
  std::array<T, kMaxTileVolume> buf;
  std::array<std::size_t, 3> origin;
  std::array<std::size_t, 3> extent;
  std::array<std::size_t, 3> lstride;
  std::array<std::size_t, 3> owned;
};

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// The original guarded walk: per-point availability checks, per-point
/// 3-multiply linearize, per-point owned test.
template <bool kCompress, typename T>
void tile_pass(TileView<T>& t, int d, std::size_t s,
               const std::array<bool, 3>& done, const quant::Quantizer& qz,
               CubicKind kind, const dev::Dim3& dims,
               std::span<quant::Code> codes, std::span<const quant::Code> codes_in) {
  std::array<std::size_t, 3> start{0, 0, 0}, step{1, 1, 1};
  for (int i = 0; i < 3; ++i) step[i] = done[i] ? s : 2 * s;
  start[d] = s;
  step[d] = 2 * s;

  const std::size_t ls = t.lstride[d];
  const std::size_t ext_d = t.extent[d];

  for (std::size_t z = start[2]; z < t.extent[2]; z += step[2]) {
    for (std::size_t y = start[1]; y < t.extent[1]; y += step[1]) {
      for (std::size_t x = start[0]; x < t.extent[0]; x += step[0]) {
        const std::array<std::size_t, 3> c{x, y, z};
        const std::size_t idx =
            x * t.lstride[0] + y * t.lstride[1] + z * t.lstride[2];
        const std::size_t cd = c[d];

        const bool hb = cd >= s;
        const bool hc = cd + s < ext_d;
        const bool ha = cd >= 3 * s;
        const bool hd = cd + 3 * s < ext_d;
        const T a = ha ? t.buf[idx - 3 * s * ls] : T{0};
        const T b = hb ? t.buf[idx - s * ls] : T{0};
        const T cc = hc ? t.buf[idx + s * ls] : T{0};
        const T dd = hd ? t.buf[idx + 3 * s * ls] : T{0};
        const T pred = spline_predict(ha, a, hb, b, hc, cc, hd, dd, kind);

        const bool is_owned =
            x < t.owned[0] && y < t.owned[1] && z < t.owned[2];
        const std::size_t gidx = dev::linearize(
            dims, t.origin[0] + x, t.origin[1] + y, t.origin[2] + z);

        if constexpr (kCompress) {
          const auto r = qz.quantize(t.buf[idx], pred);
          t.buf[idx] = r.recon;
          if (is_owned) codes[gidx] = r.stored;
        } else {
          t.buf[idx] = qz.dequantize(codes_in[gidx], pred, t.buf[idx]);
        }
      }
    }
  }
}

template <bool kCompress, typename T>
void run_tiles(std::span<const T> in, std::span<T> out,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, const dev::Dim3& dims,
               double eb, const InterpConfig& cfg, int radius) {
  const Geometry geo = geometry_for(dims);

  std::vector<quant::Quantizer> level_qz;
  for (std::size_t s = 1; s <= geo.top_stride; s <<= 1)
    level_qz.emplace_back(level_eb(eb, cfg.alpha, level_of_stride(s)), radius);
  auto qz_for = [&](std::size_t s) -> const quant::Quantizer& {
    int l = 0;
    while ((std::size_t{1} << l) < s) ++l;
    return level_qz[static_cast<std::size_t>(l)];
  };

  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  dev::launch_blocks(grid, [&](const dev::BlockIdx& blk) {
    TileView<T> t;
    t.origin = {blk.x * geo.tile.x, blk.y * geo.tile.y, blk.z * geo.tile.z};
    for (int i = 0; i < 3; ++i) {
      const std::size_t nd = dim_of(dims, i);
      const std::size_t td = dim_of(geo.tile, i);
      t.owned[i] = std::min(td, nd - t.origin[i]);
      t.extent[i] = std::min(td + 1, nd - t.origin[i]);
    }
    t.lstride = {1, t.extent[0], t.extent[0] * t.extent[1]};

    const std::span<const T> src = in;
    for (std::size_t z = 0; z < t.extent[2]; ++z)
      for (std::size_t y = 0; y < t.extent[1]; ++y) {
        const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
        const std::size_t grow = dev::linearize(dims, t.origin[0],
                                                t.origin[1] + y, t.origin[2] + z);
        for (std::size_t x = 0; x < t.extent[0]; ++x)
          t.buf[lrow + x] = src[grow + x];
      }

    for (std::size_t s = geo.top_stride; s >= 1; s >>= 1) {
      std::array<bool, 3> done{false, false, false};
      const quant::Quantizer& qz = qz_for(s);
      for (int k = 0; k < 3; ++k) {
        const int d = cfg.dim_order[k];
        if (dim_of(dims, d) == 1) continue;
        tile_pass<kCompress>(t, d, s, done, qz,
                             cfg.cubic[static_cast<std::size_t>(d)], dims,
                             codes, codes_in);
        done[static_cast<std::size_t>(d)] = true;
      }
    }

    if constexpr (!kCompress) {
      for (std::size_t z = 0; z < t.owned[2]; ++z)
        for (std::size_t y = 0; y < t.owned[1]; ++y) {
          const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
          const std::size_t grow = dev::linearize(
              dims, t.origin[0], t.origin[1] + y, t.origin[2] + z);
          for (std::size_t x = 0; x < t.owned[0]; ++x)
            out[grow + x] = t.buf[lrow + x];
        }
    }
  });
}

template <typename T>
GInterpOutputT<T> compress_impl(std::span<const T> data, const dev::Dim3& dims,
                                double eb, const InterpConfig& cfg,
                                int radius) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("ginterp_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("ginterp_compress: eb must be > 0");

  const Geometry geo = geometry_for(dims);
  GInterpOutputT<T> out;
  out.anchors = gather_anchors(data, dims, geo.anchor);
  out.codes.assign(data.size(), static_cast<quant::Code>(radius));

  run_tiles<true, T>(data, {}, out.codes, {}, dims, eb, cfg, radius);
  out.outliers = quant::OutlierSetT<T>::gather(out.codes, data);
  return out;
}

template <typename T>
std::vector<T> decompress_impl(std::span<const quant::Code> codes,
                               std::span<const T> anchors,
                               const quant::OutlierSetT<T>& outliers,
                               const dev::Dim3& dims, double eb,
                               const InterpConfig& cfg, int radius) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  const Geometry geo = geometry_for(dims);
  if (anchors.size() != anchor_dims(dims, geo.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  outliers.check_bounds(dims.volume(), "ginterp");
  std::vector<T> work(dims.volume(), T{0});
  scatter_anchors<T>(anchors, work, dims, geo.anchor);
  outliers.scatter(work);

  std::vector<T> out(dims.volume(), T{0});
  run_tiles<false, T>(work, out, {}, codes, dims, eb, cfg, radius);
  return out;
}

}  // namespace

GInterpOutputT<float> ginterp_compress(std::span<const float> data,
                                       const dev::Dim3& dims, double eb,
                                       const InterpConfig& cfg, int radius) {
  return compress_impl<float>(data, dims, eb, cfg, radius);
}

GInterpOutputT<double> ginterp_compress(std::span<const double> data,
                                        const dev::Dim3& dims, double eb,
                                        const InterpConfig& cfg, int radius) {
  return compress_impl<double>(data, dims, eb, cfg, radius);
}

std::vector<float> ginterp_decompress(std::span<const quant::Code> codes,
                                      std::span<const float> anchors,
                                      const quant::OutlierSetT<float>& outliers,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius) {
  return decompress_impl<float>(codes, anchors, outliers, dims, eb, cfg,
                                radius);
}

std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius) {
  return decompress_impl<double>(codes, anchors, outliers, dims, eb, cfg,
                                 radius);
}

LorenzoOutput lorenzo_compress(std::span<const float> data,
                               const dev::Dim3& dims, double eb, int radius) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("lorenzo_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("lorenzo_compress: eb must be > 0");

  const double inv = 1.0 / (2.0 * eb);
  std::vector<std::int64_t> d(data.size());
  dev::launch_linear(
      data.size(),
      [&](std::size_t i) {
        d[i] = static_cast<std::int64_t>(
            std::llround(static_cast<double>(data[i]) * inv));
      },
      1 << 14);

  LorenzoOutput out;
  out.codes.resize(data.size());
  std::vector<float> escaped(data.size(), 0.0f);
  const auto nx = dims.x, ny = dims.y;
  dev::launch_linear(
      dims.z,
      [&](std::size_t z) {
        for (std::size_t y = 0; y < ny; ++y) {
          const std::size_t row = dev::linearize(dims, 0, y, z);
          for (std::size_t x = 0; x < nx; ++x) {
            const std::size_t i = row + x;
            auto at = [&](std::size_t dx, std::size_t dy,
                          std::size_t dz) -> std::int64_t {
              if (x < dx || y < dy || z < dz) return 0;
              return d[i - dx - dy * nx - dz * nx * ny];
            };
            const std::int64_t pred = at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) -
                                      at(1, 1, 0) - at(1, 0, 1) - at(0, 1, 1) +
                                      at(1, 1, 1);
            const std::int64_t q = d[i] - pred;
            if (q <= -radius || q >= radius) {
              out.codes[i] = quant::kOutlierMarker;
              escaped[i] = static_cast<float>(q);
            } else {
              out.codes[i] = static_cast<quant::Code>(q + radius);
            }
          }
        }
      },
      1);
  out.outliers = quant::OutlierSet::gather(out.codes, escaped);
  return out;
}

}  // namespace szi::predictor::reference
