// G-Interp (§V): the GPU-optimized multi-level interpolation predictor.
//
// The field is partitioned into thread-block tiles (32x8x8 for 3D). Each tile
// copies its closed region — the owned chunk plus the +1 borrowed border
// planes, i.e. the paper's 33x9x9 shared-memory block — into a private
// buffer, then interpolates level by level (strides 4 → 2 → 1), dimension by
// dimension in the auto-tuned order, replacing each value with its
// reconstruction so decompression replays predictions bit-identically.
//
// Border planes (global coordinates that are multiples of the anchor stride)
// are recomputed redundantly by every tile that shares them: their
// predictions provably depend only on same-plane values and anchors, and the
// extent along the interpolation dimension is identical for all sharing
// tiles, so every tile derives the same values — but only the owning tile
// (half-open region) emits quant-codes / reconstructed output. This gives
// race-free tile parallelism, the CPU realization of the paper's
// shared-memory design.
//
// Both single- and double-precision fields are supported; the paper's
// datasets are f32, but SDRBench carries f64 fields (e.g. QMCPack) that a
// production deployment must handle.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "device/dims.hh"
#include "predictor/interp_config.hh"
#include "quant/outlier.hh"
#include "quant/quantizer.hh"

namespace szi::predictor {

/// Everything the prediction stage produces; the pipeline encodes `codes`
/// with Huffman and stores anchors/outliers raw (§V-A, §VI-A).
template <typename T>
struct GInterpOutputT {
  std::vector<quant::Code> codes;  ///< biased quant-codes, one per element
  std::vector<T> anchors;          ///< lossless anchor grid
  quant::OutlierSetT<T> outliers;  ///< |q| >= radius escapes
};

using GInterpOutput = GInterpOutputT<float>;

/// The prediction stage's output in workspace memory: spans stay valid
/// until the owning Workspace resets, and every buffer is drawn from the
/// arena pool instead of freshly allocated.
template <typename T>
struct GInterpViewT {
  std::span<const quant::Code> codes;
  std::span<const T> anchors;
  quant::OutlierViewT<T> outliers;
};

/// Predicts+quantizes `data`. `cfg` normally comes from autotune();
/// it must be persisted for decompression.
[[nodiscard]] GInterpOutputT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] GInterpOutputT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);

/// Workspace forms: identical math and byte-for-byte identical outputs,
/// with codes/anchors/outliers pooled in `ws`.
[[nodiscard]] GInterpViewT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpViewT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

/// Prediction output plus the quant-code histogram accumulated inside the
/// predict kernel itself (the fused pipeline — no separate read pass over
/// `codes`). `histogram` has 2*radius bins and is bit-identical to
/// huffman::histogram(pred.codes, 2*radius).
template <typename T>
struct GInterpFusedT {
  GInterpViewT<T> pred;
  std::vector<std::uint32_t> histogram;
};

/// Fused predict+quantize+histogram. Codes/anchors/outliers are pooled in
/// `ws` and byte-identical to ginterp_compress(); each worker counts the
/// codes of the tiles it owns into a private banked histogram while they are
/// cache-hot, and the partials fold with the deterministic serial merge.
[[nodiscard]] GInterpFusedT<float> ginterp_compress_fused(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpFusedT<double> ginterp_compress_fused(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

// ---- Level classification (the SZI2 segmented archive) -------------------
//
// Every non-anchor position is targeted by exactly one (stride, dim) pass,
// so it belongs to exactly one interpolation level: with D the set of
// interpolated dimensions (those whose per-dim anchor stride exceeds 1; x
// always, y/z unless the geometry degenerates them to stride-1 anchor
// planes), a position's level is ℓ = countr_zero(OR of its D-coordinates)+1
// and it is an anchor when that valuation reaches interp_levels(geo). The
// level populations and the rank of any position within its level therefore
// have closed forms — segment sizes and scatter targets never require a
// counting pass.

/// Number of interpolation levels of the field's geometry.
[[nodiscard]] int ginterp_level_count(const dev::Dim3& dims);

/// Exact number of level-ℓ positions (1-based level; closed form).
[[nodiscard]] std::size_t ginterp_level_volume(const dev::Dim3& dims,
                                               int level);

/// Grid dimensions of the preview reconstructed from anchors + levels >=
/// max_level: interpolated dims shrink to their stride-2^(max_level-1)
/// grid, degenerate dims keep their extent. max_level = level_count + 1
/// yields the anchor grid.
[[nodiscard]] dev::Dim3 ginterp_preview_dims(const dev::Dim3& dims,
                                             int max_level);

/// Per-level re-bucketing of a full code array: streams[ℓ-1] holds the
/// level-ℓ codes in ascending linear order (ws-owned), histograms[ℓ-1]
/// counts them over `nbins` bins. Anchor positions are not emitted — their
/// codes are always the "perfectly predicted" prefill.
struct GInterpLevelSplit {
  std::vector<std::span<const quant::Code>> streams;
  std::vector<std::vector<std::uint32_t>> histograms;
};

[[nodiscard]] GInterpLevelSplit ginterp_split_levels(
    std::span<const quant::Code> codes, const dev::Dim3& dims,
    std::size_t nbins, dev::Workspace& ws);

/// Resumable inverse of the split: scatters one level's stream back into a
/// full code array in ascending linear order. advance() consumes stream
/// symbols [consumed(), upto) and returns the new watermark — the linear
/// index below which every position of this level has been scattered (the
/// field volume once the stream is exhausted). The pipelined decompressor
/// advances the finest level's cursor chunk-group by chunk-group and feeds
/// the watermark to GInterpReconstructorT::codes_needed.
class LevelScatterCursor {
 public:
  LevelScatterCursor(const dev::Dim3& dims, int level);

  std::size_t advance(std::span<const quant::Code> stream, std::size_t upto,
                      std::span<quant::Code> codes);

  [[nodiscard]] std::size_t consumed() const { return consumed_; }
  [[nodiscard]] std::size_t watermark() const { return watermark_; }

 private:
  void enter_row();

  dev::Dim3 dims_;
  std::size_t s_;            ///< stride of the level
  int v_;                    ///< 0-based level
  int nlevels_;
  bool iy_, iz_;             ///< y/z interpolated by the geometry
  std::size_t y_ = 0, z_ = 0;
  std::size_t x_ = 0;        ///< next position in the current row
  std::size_t step_ = 0;     ///< 0 marks "current row has no positions"
  std::size_t consumed_ = 0;
  std::size_t watermark_ = 0;
};

/// Fused predict+quantize with per-level emission: the same tile walk as
/// ginterp_compress_fused, but each owned row's codes are re-bucketed into
/// per-level streams (rank-addressed, so worker partitioning is
/// unobservable) with one exact per-level histogram each. `pred.codes`
/// still holds the full prefilled code array; streams/histograms are
/// byte-identical to ginterp_split_levels over it.
template <typename T>
struct GInterpLevelsT {
  GInterpViewT<T> pred;
  GInterpLevelSplit levels;
};

[[nodiscard]] GInterpLevelsT<float> ginterp_compress_fused_levels(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpLevelsT<double> ginterp_compress_fused_levels(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

/// Stride subsample of a full-resolution field onto the preview grid of
/// `max_level` (row-major over ginterp_preview_dims).
[[nodiscard]] std::vector<float> ginterp_subsample(std::span<const float> full,
                                                   const dev::Dim3& dims,
                                                   int max_level);
[[nodiscard]] std::vector<double> ginterp_subsample(
    std::span<const double> full, const dev::Dim3& dims, int max_level);

/// Partial reconstruction for progressive decode: replays anchors + every
/// level >= max_level and returns the stride-2^(max_level-1) preview grid.
/// Passes at stride s touch only stride-s grid positions, so the preview is
/// bit-identical to ginterp_subsample over the full reconstruction — finer
/// levels' codes are never read and may be absent (prefilled). `codes` must
/// still span the full volume, with the levels >= max_level scattered and
/// everything else at the prefill value. max_level is clamped to
/// [1, level_count+1]; level_count+1 returns the lossless anchor grid.
[[nodiscard]] std::vector<float> ginterp_decompress_to_level(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierViewT<float>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius, int max_level,
    dev::Workspace& ws);
[[nodiscard]] std::vector<double> ginterp_decompress_to_level(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierViewT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius, int max_level,
    dev::Workspace& ws);

/// Reconstructs the field from codes + anchors + outliers.
[[nodiscard]] std::vector<float> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierSetT<float>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);

/// In-place reconstruction: outliers arrive as borrowed views, anchors and
/// outlier originals are scattered straight into the caller-provided `out`
/// span (size dims.volume()), and the interpolation tiles read and write
/// that same buffer — no staging copy of the field exists. Performs the
/// same archive validation as ginterp_decompress and produces bit-identical
/// output for every archive that validation admits; see GInterpReconstructorT
/// for the in-place safety argument and the one caveat about `out`'s prior
/// contents on undetectably-corrupt archives. `ws` is unused (kept for
/// call-site stability: every decode path threads one workspace through).
void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const float> anchors,
                             const quant::OutlierViewT<float>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<float> out, dev::Workspace& ws);
void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const double> anchors,
                             const quant::OutlierViewT<double>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<double> out, dev::Workspace& ws);

/// Incremental in-place reconstruction, one tile-grid z-slab at a time —
/// the unit the pipelined decompressor interleaves with Huffman chunk
/// decode (slab bz only reads codes below codes_needed(bz), so it can run
/// as soon as the entropy decoder's watermark passes that index).
///
/// Why in place is safe (the full argument is in docs/PERF.md):
///   - the only *loaded* values a tile ever consumes are anchors (never a
///     pass target) and outlier originals (dequantize returns the loaded
///     value verbatim at marker codes) — and reconstruction writes exactly
///     those values back, so whether a shared border plane is read before
///     or after its owning tile ran, the bytes are the same;
///   - every other position's reconstruction depends only on codes and on
///     inputs recomputed earlier within the same tile, never on what the
///     buffer held at load time.
/// Scheduling keeps the formal data race out: the constructor snapshots
/// every slab-boundary z-plane right after the scatter, and a slab's tiles
/// load their +z border row-by-row from that immutable snapshot instead of
/// from `out` — the snapshot holds exactly the values the safety argument
/// says are consumed (anchors and outlier originals, which reconstruction
/// writes back unchanged), so the substitution is bit-transparent. With the
/// cross-slab read gone, slabs are fully independent (disjoint writes,
/// snapshot or own-slab reads) and may run in ANY order, including
/// concurrently on different streams; within a slab tiles launch in four
/// (bx, by)-parity waves, so no two concurrent tiles' closed regions
/// overlap. Output is bit-identical to the staged ginterp_decompress at any
/// worker count and any slab schedule.
///
/// Caveat: positions whose code is the outlier marker but which the archive
/// failed to list as outliers (impossible for well-formed archives; not
/// always detectable for corrupt ones) reconstruct from `out`'s prior
/// contents instead of the staging buffer's zeros — still silently-wrong
/// values either way, and never UB, which is all the corruption contract
/// promises.
template <typename T>
class GInterpReconstructorT {
 public:
  /// Validates archive metadata (same core::CorruptArchive throws as
  /// ginterp_decompress) and scatters anchors + outlier originals into
  /// `out`. `codes` and `out` are borrowed and must outlive the slab runs;
  /// `codes` may be filled lazily as long as slab bz's prefix is decoded
  /// before run_slab(bz). `max_level` > 1 stops the per-tile level walk
  /// above that level's stride: only stride-2^(max_level-1) grid positions
  /// are reconstructed (the progressive preview path); everything finer
  /// keeps whatever `out` held after the scatter.
  GInterpReconstructorT(std::span<const quant::Code> codes,
                        std::span<const T> anchors,
                        const quant::OutlierViewT<T>& outliers,
                        const dev::Dim3& dims, double eb,
                        const InterpConfig& cfg, int radius, std::span<T> out,
                        int max_level = 1);

  [[nodiscard]] std::size_t slab_count() const { return grid_.z; }

  /// Exclusive upper bound on the linear code indices slab `bz` reads
  /// (monotone in bz; slab_count()-1 maps to the full volume).
  [[nodiscard]] std::size_t codes_needed(std::size_t bz) const;

  /// Reconstructs every tile with block index z == bz. Slabs are mutually
  /// independent (cross-slab borders come from the constructor's snapshot),
  /// so calls may come in any order and from concurrent streams — each bz
  /// exactly once. Slab bz still requires codes_needed(bz) codes decoded.
  void run_slab(std::size_t bz);

 private:
  std::span<const quant::Code> codes_;
  std::span<T> out_;
  dev::Dim3 dims_;
  dev::Dim3 grid_;
  Geometry geo_;
  InterpConfig cfg_;
  std::vector<quant::Quantizer> level_qz_;
  std::size_t min_stride_ = 1;  ///< finest stride the level walk reaches
  /// Post-scatter snapshot of the slab-boundary z-planes (z = (bz+1)*tile.z
  /// for bz < grid_.z - 1), dims.x*dims.y elements each, making every slab's
  /// +z border load independent of neighbor-slab progress.
  std::vector<T> border_;
};

using GInterpReconstructor = GInterpReconstructorT<float>;

extern template class GInterpReconstructorT<float>;
extern template class GInterpReconstructorT<double>;

// ---- Random-access (ROI) reconstruction ----------------------------------
//
// Tiles are self-seeding: the first interpolation pass's inputs are all
// anchor positions, and the only *loaded* values a tile ever consumes are
// anchors and outlier originals. A box-local buffer that holds exactly the
// post-scatter state of the covering tiles' closed regions therefore
// reconstructs those tiles bit-identically to a full decompress — no tile
// outside the cover has to run. The closed forms above (ginterp_level_*)
// locate each level's covered symbols inside its per-level stream, so a
// random-access reader decodes only the Huffman chunks those rank runs
// touch.

/// Covering-tile plan of the ROI box [lo, lo + ext): the tile block range
/// and the tile-aligned closed box that contains every covering tile's
/// closed region. Throws std::invalid_argument when the ROI is empty or
/// exceeds the field.
struct GInterpRoiPlan {
  dev::Dim3 tile_lo;   ///< first covering tile block per axis
  dev::Dim3 tile_hi;   ///< one past the last covering tile block
  dev::Dim3 box_lo;    ///< closed box origin (tile_lo * tile)
  dev::Dim3 box_dims;  ///< closed box extents, clipped to the field
};

[[nodiscard]] GInterpRoiPlan ginterp_roi_plan(const dev::Dim3& dims,
                                              const dev::Dim3& lo,
                                              const dev::Dim3& ext);

/// Count of level-`level` (1-based) positions in the z-plane prefix [0, z)
/// — the rank at which a z-slab's symbols start within the level stream.
/// Closed form; z is clamped to dims.z.
[[nodiscard]] std::size_t ginterp_level_prefix(const dev::Dim3& dims,
                                               int level, std::size_t z);

/// Enumerates, in ascending rank order, the x-runs of level-`level`
/// positions inside the box [lo, lo + ext): fn(rank, count, x0, y, z, step)
/// describes `count` positions at global coordinates (x0 + i*step, y, z)
/// occupying ranks [rank, rank + count) of the level's stream.
using GInterpRunFn =
    std::function<void(std::size_t rank, std::size_t count, std::size_t x0,
                       std::size_t y, std::size_t z, std::size_t step)>;
void ginterp_level_box_runs(const dev::Dim3& dims, int level,
                            const dev::Dim3& lo, const dev::Dim3& ext,
                            const GInterpRunFn& fn);

/// Box-clipped counterpart of GInterpReconstructorT: reconstructs only the
/// plan's covering tiles inside a box-local buffer. `codes` and `out` are
/// box-local arrays of plan.box_dims.volume() elements; the caller has
/// already radius-prefilled `codes`, scattered every covered level's
/// symbols into it, and scattered anchors + outlier originals into `out`
/// (all at box-local indices). Tile clamps, pass walks and per-point
/// arithmetic are shared with the full reconstructor, so the owned region
/// of every covering tile comes out bit-identical to the same tile of a
/// full decompress; positions of `out` outside those owned regions (the
/// halo) hold reconstruction scratch and must be discarded by the crop.
template <typename T>
class GInterpRoiReconstructorT {
 public:
  GInterpRoiReconstructorT(std::span<const quant::Code> codes,
                           const GInterpRoiPlan& plan, const dev::Dim3& dims,
                           double eb, const InterpConfig& cfg, int radius,
                           std::span<T> out);

  /// Covered tile slabs along z; slab k holds tile block z = tile_lo.z + k.
  [[nodiscard]] std::size_t slab_count() const {
    return plan_.tile_hi.z - plan_.tile_lo.z;
  }

  /// Reconstructs every covering tile of slab k. As with the full
  /// reconstructor, slabs are mutually independent (interior slab
  /// boundaries load from a post-scatter snapshot) and may run concurrently
  /// — each k exactly once.
  void run_slab(std::size_t k);

 private:
  std::span<const quant::Code> codes_;
  std::span<T> out_;
  dev::Dim3 dims_;
  GInterpRoiPlan plan_;
  Geometry geo_;
  InterpConfig cfg_;
  std::vector<quant::Quantizer> level_qz_;
  /// Post-scatter snapshot of the box-interior slab-boundary z-planes
  /// (box_dims.x * box_dims.y elements each), one per interior boundary.
  std::vector<T> border_;
};

extern template class GInterpRoiReconstructorT<float>;
extern template class GInterpRoiReconstructorT<double>;

}  // namespace szi::predictor
