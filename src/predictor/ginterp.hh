// G-Interp (§V): the GPU-optimized multi-level interpolation predictor.
//
// The field is partitioned into thread-block tiles (32x8x8 for 3D). Each tile
// copies its closed region — the owned chunk plus the +1 borrowed border
// planes, i.e. the paper's 33x9x9 shared-memory block — into a private
// buffer, then interpolates level by level (strides 4 → 2 → 1), dimension by
// dimension in the auto-tuned order, replacing each value with its
// reconstruction so decompression replays predictions bit-identically.
//
// Border planes (global coordinates that are multiples of the anchor stride)
// are recomputed redundantly by every tile that shares them: their
// predictions provably depend only on same-plane values and anchors, and the
// extent along the interpolation dimension is identical for all sharing
// tiles, so every tile derives the same values — but only the owning tile
// (half-open region) emits quant-codes / reconstructed output. This gives
// race-free tile parallelism, the CPU realization of the paper's
// shared-memory design.
//
// Both single- and double-precision fields are supported; the paper's
// datasets are f32, but SDRBench carries f64 fields (e.g. QMCPack) that a
// production deployment must handle.
#pragma once

#include <span>
#include <vector>

#include "device/dims.hh"
#include "predictor/interp_config.hh"
#include "quant/outlier.hh"
#include "quant/quantizer.hh"

namespace szi::predictor {

/// Everything the prediction stage produces; the pipeline encodes `codes`
/// with Huffman and stores anchors/outliers raw (§V-A, §VI-A).
template <typename T>
struct GInterpOutputT {
  std::vector<quant::Code> codes;  ///< biased quant-codes, one per element
  std::vector<T> anchors;          ///< lossless anchor grid
  quant::OutlierSetT<T> outliers;  ///< |q| >= radius escapes
};

using GInterpOutput = GInterpOutputT<float>;

/// The prediction stage's output in workspace memory: spans stay valid
/// until the owning Workspace resets, and every buffer is drawn from the
/// arena pool instead of freshly allocated.
template <typename T>
struct GInterpViewT {
  std::span<const quant::Code> codes;
  std::span<const T> anchors;
  quant::OutlierViewT<T> outliers;
};

/// Predicts+quantizes `data`. `cfg` normally comes from autotune();
/// it must be persisted for decompression.
[[nodiscard]] GInterpOutputT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] GInterpOutputT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);

/// Workspace forms: identical math and byte-for-byte identical outputs,
/// with codes/anchors/outliers pooled in `ws`.
[[nodiscard]] GInterpViewT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpViewT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

/// Prediction output plus the quant-code histogram accumulated inside the
/// predict kernel itself (the fused pipeline — no separate read pass over
/// `codes`). `histogram` has 2*radius bins and is bit-identical to
/// huffman::histogram(pred.codes, 2*radius).
template <typename T>
struct GInterpFusedT {
  GInterpViewT<T> pred;
  std::vector<std::uint32_t> histogram;
};

/// Fused predict+quantize+histogram. Codes/anchors/outliers are pooled in
/// `ws` and byte-identical to ginterp_compress(); each worker counts the
/// codes of the tiles it owns into a private banked histogram while they are
/// cache-hot, and the partials fold with the deterministic serial merge.
[[nodiscard]] GInterpFusedT<float> ginterp_compress_fused(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpFusedT<double> ginterp_compress_fused(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

/// Reconstructs the field from codes + anchors + outliers.
[[nodiscard]] std::vector<float> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierSetT<float>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);

/// In-place reconstruction: outliers arrive as borrowed views, anchors and
/// outlier originals are scattered straight into the caller-provided `out`
/// span (size dims.volume()), and the interpolation tiles read and write
/// that same buffer — no staging copy of the field exists. Performs the
/// same archive validation as ginterp_decompress and produces bit-identical
/// output for every archive that validation admits; see GInterpReconstructorT
/// for the in-place safety argument and the one caveat about `out`'s prior
/// contents on undetectably-corrupt archives. `ws` is unused (kept for
/// call-site stability: every decode path threads one workspace through).
void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const float> anchors,
                             const quant::OutlierViewT<float>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<float> out, dev::Workspace& ws);
void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const double> anchors,
                             const quant::OutlierViewT<double>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<double> out, dev::Workspace& ws);

/// Incremental in-place reconstruction, one tile-grid z-slab at a time —
/// the unit the pipelined decompressor interleaves with Huffman chunk
/// decode (slab bz only reads codes below codes_needed(bz), so it can run
/// as soon as the entropy decoder's watermark passes that index).
///
/// Why in place is safe (the full argument is in docs/PERF.md):
///   - the only *loaded* values a tile ever consumes are anchors (never a
///     pass target) and outlier originals (dequantize returns the loaded
///     value verbatim at marker codes) — and reconstruction writes exactly
///     those values back, so whether a shared border plane is read before
///     or after its owning tile ran, the bytes are the same;
///   - every other position's reconstruction depends only on codes and on
///     inputs recomputed earlier within the same tile, never on what the
///     buffer held at load time.
/// Scheduling keeps the formal data race out: the constructor snapshots
/// every slab-boundary z-plane right after the scatter, and a slab's tiles
/// load their +z border row-by-row from that immutable snapshot instead of
/// from `out` — the snapshot holds exactly the values the safety argument
/// says are consumed (anchors and outlier originals, which reconstruction
/// writes back unchanged), so the substitution is bit-transparent. With the
/// cross-slab read gone, slabs are fully independent (disjoint writes,
/// snapshot or own-slab reads) and may run in ANY order, including
/// concurrently on different streams; within a slab tiles launch in four
/// (bx, by)-parity waves, so no two concurrent tiles' closed regions
/// overlap. Output is bit-identical to the staged ginterp_decompress at any
/// worker count and any slab schedule.
///
/// Caveat: positions whose code is the outlier marker but which the archive
/// failed to list as outliers (impossible for well-formed archives; not
/// always detectable for corrupt ones) reconstruct from `out`'s prior
/// contents instead of the staging buffer's zeros — still silently-wrong
/// values either way, and never UB, which is all the corruption contract
/// promises.
template <typename T>
class GInterpReconstructorT {
 public:
  /// Validates archive metadata (same core::CorruptArchive throws as
  /// ginterp_decompress) and scatters anchors + outlier originals into
  /// `out`. `codes` and `out` are borrowed and must outlive the slab runs;
  /// `codes` may be filled lazily as long as slab bz's prefix is decoded
  /// before run_slab(bz).
  GInterpReconstructorT(std::span<const quant::Code> codes,
                        std::span<const T> anchors,
                        const quant::OutlierViewT<T>& outliers,
                        const dev::Dim3& dims, double eb,
                        const InterpConfig& cfg, int radius, std::span<T> out);

  [[nodiscard]] std::size_t slab_count() const { return grid_.z; }

  /// Exclusive upper bound on the linear code indices slab `bz` reads
  /// (monotone in bz; slab_count()-1 maps to the full volume).
  [[nodiscard]] std::size_t codes_needed(std::size_t bz) const;

  /// Reconstructs every tile with block index z == bz. Slabs are mutually
  /// independent (cross-slab borders come from the constructor's snapshot),
  /// so calls may come in any order and from concurrent streams — each bz
  /// exactly once. Slab bz still requires codes_needed(bz) codes decoded.
  void run_slab(std::size_t bz);

 private:
  std::span<const quant::Code> codes_;
  std::span<T> out_;
  dev::Dim3 dims_;
  dev::Dim3 grid_;
  Geometry geo_;
  InterpConfig cfg_;
  std::vector<quant::Quantizer> level_qz_;
  /// Post-scatter snapshot of the slab-boundary z-planes (z = (bz+1)*tile.z
  /// for bz < grid_.z - 1), dims.x*dims.y elements each, making every slab's
  /// +z border load independent of neighbor-slab progress.
  std::vector<T> border_;
};

using GInterpReconstructor = GInterpReconstructorT<float>;

extern template class GInterpReconstructorT<float>;
extern template class GInterpReconstructorT<double>;

}  // namespace szi::predictor
