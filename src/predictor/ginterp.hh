// G-Interp (§V): the GPU-optimized multi-level interpolation predictor.
//
// The field is partitioned into thread-block tiles (32x8x8 for 3D). Each tile
// copies its closed region — the owned chunk plus the +1 borrowed border
// planes, i.e. the paper's 33x9x9 shared-memory block — into a private
// buffer, then interpolates level by level (strides 4 → 2 → 1), dimension by
// dimension in the auto-tuned order, replacing each value with its
// reconstruction so decompression replays predictions bit-identically.
//
// Border planes (global coordinates that are multiples of the anchor stride)
// are recomputed redundantly by every tile that shares them: their
// predictions provably depend only on same-plane values and anchors, and the
// extent along the interpolation dimension is identical for all sharing
// tiles, so every tile derives the same values — but only the owning tile
// (half-open region) emits quant-codes / reconstructed output. This gives
// race-free tile parallelism, the CPU realization of the paper's
// shared-memory design.
//
// Both single- and double-precision fields are supported; the paper's
// datasets are f32, but SDRBench carries f64 fields (e.g. QMCPack) that a
// production deployment must handle.
#pragma once

#include <span>
#include <vector>

#include "device/dims.hh"
#include "predictor/interp_config.hh"
#include "quant/outlier.hh"
#include "quant/quantizer.hh"

namespace szi::predictor {

/// Everything the prediction stage produces; the pipeline encodes `codes`
/// with Huffman and stores anchors/outliers raw (§V-A, §VI-A).
template <typename T>
struct GInterpOutputT {
  std::vector<quant::Code> codes;  ///< biased quant-codes, one per element
  std::vector<T> anchors;          ///< lossless anchor grid
  quant::OutlierSetT<T> outliers;  ///< |q| >= radius escapes
};

using GInterpOutput = GInterpOutputT<float>;

/// The prediction stage's output in workspace memory: spans stay valid
/// until the owning Workspace resets, and every buffer is drawn from the
/// arena pool instead of freshly allocated.
template <typename T>
struct GInterpViewT {
  std::span<const quant::Code> codes;
  std::span<const T> anchors;
  quant::OutlierViewT<T> outliers;
};

/// Predicts+quantizes `data`. `cfg` normally comes from autotune();
/// it must be persisted for decompression.
[[nodiscard]] GInterpOutputT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] GInterpOutputT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);

/// Workspace forms: identical math and byte-for-byte identical outputs,
/// with codes/anchors/outliers pooled in `ws`.
[[nodiscard]] GInterpViewT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpViewT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

/// Prediction output plus the quant-code histogram accumulated inside the
/// predict kernel itself (the fused pipeline — no separate read pass over
/// `codes`). `histogram` has 2*radius bins and is bit-identical to
/// huffman::histogram(pred.codes, 2*radius).
template <typename T>
struct GInterpFusedT {
  GInterpViewT<T> pred;
  std::vector<std::uint32_t> histogram;
};

/// Fused predict+quantize+histogram. Codes/anchors/outliers are pooled in
/// `ws` and byte-identical to ginterp_compress(); each worker counts the
/// codes of the tiles it owns into a private banked histogram while they are
/// cache-hot, and the partials fold with the deterministic serial merge.
[[nodiscard]] GInterpFusedT<float> ginterp_compress_fused(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);
[[nodiscard]] GInterpFusedT<double> ginterp_compress_fused(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws);

/// Reconstructs the field from codes + anchors + outliers.
[[nodiscard]] std::vector<float> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierSetT<float>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);

/// Workspace-threaded reconstruction: the scatter/work buffer is pooled in
/// `ws`, outliers arrive as borrowed views, and the field is written into
/// the caller-provided `out` span (size dims.volume(); may be pooled and
/// unzeroed — every position is overwritten). Performs the same archive
/// validation as ginterp_decompress and produces bit-identical output.
void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const float> anchors,
                             const quant::OutlierViewT<float>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<float> out, dev::Workspace& ws);
void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const double> anchors,
                             const quant::OutlierViewT<double>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<double> out, dev::Workspace& ws);

}  // namespace szi::predictor
