// Profiling-based auto-tuning of G-Interp (§V-C): a lightweight kernel that
// (1) computes the value range (for the value-range-relative error bound ε),
// (2) samples a small sub-grid and accumulates cubic-spline prediction errors
//     per (spline, dimension),
// then derives α from the paper's Eq. (1), picks the better cubic per
// dimension, and orders dimensions least-smooth-first.
#pragma once

#include <array>
#include <span>

#include "device/arena.hh"
#include "device/dims.hh"
#include "predictor/interp_config.hh"

namespace szi::predictor {

struct ProfileResult {
  InterpConfig config;
  double value_range = 0;
  double epsilon = 0;  ///< eb / value_range
  /// Summed |prediction error| per dimension for each cubic kind; the raw
  /// numbers are exposed for the ablation benches.
  std::array<double, 3> err_nak{};
  std::array<double, 3> err_natural{};
};

/// Profiles `data` and returns the tuned configuration for absolute error
/// bound `eb`. `samples_per_dim` is the sampled sub-grid edge (default 4,
/// i.e. the paper's "4^3 sub-grid for 3D cases").
[[nodiscard]] ProfileResult autotune(std::span<const float> data,
                                     const dev::Dim3& dims, double eb,
                                     std::size_t samples_per_dim = 4);
[[nodiscard]] ProfileResult autotune(std::span<const double> data,
                                     const dev::Dim3& dims, double eb,
                                     std::size_t samples_per_dim = 4);

/// Workspace forms: the value-range reduction's scratch comes from the pool.
[[nodiscard]] ProfileResult autotune(std::span<const float> data,
                                     const dev::Dim3& dims, double eb,
                                     dev::Workspace& ws,
                                     std::size_t samples_per_dim = 4);
[[nodiscard]] ProfileResult autotune(std::span<const double> data,
                                     const dev::Dim3& dims, double eb,
                                     dev::Workspace& ws,
                                     std::size_t samples_per_dim = 4);

}  // namespace szi::predictor
