#include "predictor/ginterp.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "huffman/histogram.hh"
#include "predictor/anchor.hh"
#include "predictor/spline.hh"

namespace szi::predictor {

namespace {

/// Largest closed-tile volume across the per-rank geometries (33*9*9).
constexpr std::size_t kMaxTileVolume = 33 * 9 * 9;

template <typename T>
struct TileView {
  std::array<T, kMaxTileVolume> buf;
  std::array<std::size_t, 3> origin;  ///< global coords of local (0,0,0)
  std::array<std::size_t, 3> extent;  ///< closed local extent per dim
  std::array<std::size_t, 3> lstride; ///< local linear strides per dim
  std::array<std::size_t, 3> owned;   ///< owned extent (<= tile size)
};

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// One (stride, dimension) interpolation pass over a tile. Shared between
/// compression and decompression; `kCompress` selects which side of the
/// quantizer runs.
///
/// Interior/rim optimization. The naive walk (retained verbatim in
/// predictor/reference.cc) re-derived four neighbor-availability flags, a
/// three-multiply dev::linearize, and an ownership test for *every* target
/// point. But within one pass every quantity that used to be guarded depends
/// only on the coordinate `cd` along the target dimension d:
///   - availability (ha/hb/hc/hd) is a function of cd alone, so the spline
///     dispatch hoists to one selection per cd value — the interior cd range
///     (all four neighbors present) runs the pure cubic kernel with zero
///     per-point branches, and the rim cd values (cd = s, and the trailing
///     one-sided cases) each get their own specialized branchless walk;
///   - ownership along d is `cd < owned[d]`; ownership along the plane dims
///     splits the inner loop into an emitting prefix and a (<= 1 iteration)
///     non-emitting border tail instead of a per-point test;
///   - local and global indices advance by per-iteration constant strides,
///     replacing the per-point multiplies.
/// Iteration order across points of one pass is free: a pass writes only
/// odd multiples of s along d and reads only even multiples, so no written
/// value is ever an input to the same pass. Per-point arithmetic (spline
/// formula, quantizer) is untouched — codes and recon are byte-identical to
/// the reference by construction, which tests/test_predictor_equiv.cc
/// asserts over odd/even/tiny grids.
template <bool kCompress, typename T>
void tile_pass(TileView<T>& t, int d, std::size_t s,
               const std::array<bool, 3>& done, const quant::Quantizer& qz,
               CubicKind kind, const dev::Dim3& dims,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, std::size_t gorigin) {
  // Plane dims: u is the faster-varying one (x unless d == 0), v the other.
  const auto u = static_cast<std::size_t>(d == 0 ? 1 : 0);
  const auto v = static_cast<std::size_t>(d == 2 ? 1 : 2);
  const auto dd = static_cast<std::size_t>(d);

  // The target dim walks odd multiples of s; dims already interpolated at
  // this level walk multiples of s; pending dims walk multiples of 2s
  // (§V-A's pass ordering).
  const std::size_t step_u = done[u] ? s : 2 * s;
  const std::size_t step_v = done[v] ? s : 2 * s;
  const std::size_t ext_d = t.extent[dd];

  const std::size_t ls_u = t.lstride[u];
  const std::size_t ls_v = t.lstride[v];
  const std::size_t ls_d = t.lstride[dd];
  const std::size_t gs_all[3] = {1, dims.x, dims.x * dims.y};
  const std::size_t gs_u = gs_all[u], gs_v = gs_all[v], gs_d = gs_all[dd];

  // Neighbor offsets along d, as signed offsets from the target pointer.
  const auto o1 = static_cast<std::ptrdiff_t>(s * ls_d);
  const std::ptrdiff_t o3 = 3 * o1;

  // Inner-loop trip counts: total, and the emitting prefix (pu < owned[u]).
  const std::size_t n_u = dev::ceil_div(t.extent[u], step_u);
  const std::size_t n_u_owned = std::min(n_u, dev::ceil_div(t.owned[u], step_u));

  for (std::size_t cd = s; cd < ext_d; cd += 2 * s) {
    // Neighbor availability for this whole plane (hb := cd >= s holds by
    // construction of the walk).
    const bool ha = cd >= 3 * s;
    const bool hc = cd + s < ext_d;
    const bool hd = cd + 3 * s < ext_d;
    const bool owned_d = cd < t.owned[dd];

    // One full plane with a fixed predictor functor; `pred(p)` reads only
    // the neighbors its availability case guarantees exist.
    auto walk = [&](auto pred) {
      for (std::size_t pv = 0; pv < t.extent[v]; pv += step_v) {
        T* p = t.buf.data() + cd * ls_d + pv * ls_v;
        std::size_t gidx = gorigin + cd * gs_d + pv * gs_v;
        const std::size_t dp = step_u * ls_u;
        const std::size_t dg = step_u * gs_u;
        if constexpr (kCompress) {
          const std::size_t n_emit =
              owned_d && pv < t.owned[v] ? n_u_owned : 0;
          std::size_t k = 0;
          for (; k < n_emit; ++k, p += dp, gidx += dg) {
            const auto r = qz.quantize(*p, pred(p));
            *p = r.recon;
            codes[gidx] = r.stored;
          }
          // Border tail: recon feeds later passes, but no code is owned.
          for (; k < n_u; ++k, p += dp) *p = qz.quantize(*p, pred(p)).recon;
        } else {
          // buf[idx] holds the scattered original when the code is the
          // outlier marker; dequantize() returns it unchanged then.
          for (std::size_t k = 0; k < n_u; ++k, p += dp, gidx += dg)
            *p = qz.dequantize(codes_in[gidx], pred(p), *p);
        }
      }
    };

    if (hc) {
      if (ha && hd) {
        // Interior: the branchless cubic walk (the overwhelming majority of
        // points at fine strides).
        if (kind == CubicKind::NotAKnot)
          walk([=](const T* p) { return cubic_nak(p[-o3], p[-o1], p[o1], p[o3]); });
        else
          walk([=](const T* p) {
            return cubic_natural(p[-o3], p[-o1], p[o1], p[o3]);
          });
      } else if (ha) {
        walk([=](const T* p) { return quad_left(p[-o3], p[-o1], p[o1]); });
      } else if (hd) {
        walk([=](const T* p) { return quad_right(p[-o1], p[o1], p[o3]); });
      } else {
        walk([=](const T* p) { return linear(p[-o1], p[o1]); });
      }
    } else {
      walk([=](const T* p) { return p[-o1]; });  // one-sided nearest copy
    }
  }
}

/// Per-level quantizers for a field, indexed by log2(stride).
std::vector<quant::Quantizer> make_level_quantizers(double eb,
                                                    const InterpConfig& cfg,
                                                    std::size_t top_stride,
                                                    int radius) {
  std::vector<quant::Quantizer> level_qz;
  for (std::size_t s = 1; s <= top_stride; s <<= 1)
    level_qz.emplace_back(level_eb(eb, cfg.alpha, level_of_stride(s)), radius);
  return level_qz;
}

/// The complete per-tile interpolation body (load closed region, run every
/// (stride, dim) pass, write back the owned region on decompression) for
/// tile `blk`. Shared between the block-parallel launch in run_tiles and the
/// fused compress path, which iterates tiles inside its own worker loop so
/// it can prefill and histogram the owned codes while they are cache-hot.
template <bool kCompress, typename T>
void run_one_tile(const dev::BlockIdx& blk, std::span<const T> in,
                  std::span<T> out, std::span<quant::Code> codes,
                  std::span<const quant::Code> codes_in, const dev::Dim3& dims,
                  const InterpConfig& cfg, const Geometry& geo,
                  std::span<const quant::Quantizer> level_qz) {
  auto qz_for = [&](std::size_t s) -> const quant::Quantizer& {
    int l = 0;
    while ((std::size_t{1} << l) < s) ++l;
    return level_qz[static_cast<std::size_t>(l)];
  };

  TileView<T> t;
  t.origin = {blk.x * geo.tile.x, blk.y * geo.tile.y, blk.z * geo.tile.z};
  for (int i = 0; i < 3; ++i) {
    const std::size_t nd = dim_of(dims, i);
    const std::size_t td = dim_of(geo.tile, i);
    t.owned[i] = std::min(td, nd - t.origin[i]);
    t.extent[i] = std::min(td + 1, nd - t.origin[i]);
  }
  t.lstride = {1, t.extent[0], t.extent[0] * t.extent[1]};

  // Load the closed region. For decompression `in` is a read-only work
  // buffer holding scattered anchors and outlier originals (writes go to
  // the separate `out`, so concurrent tiles never race on border planes).
  const std::span<const T> src = in;
  for (std::size_t z = 0; z < t.extent[2]; ++z)
    for (std::size_t y = 0; y < t.extent[1]; ++y) {
      const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
      const std::size_t grow = dev::linearize(dims, t.origin[0],
                                              t.origin[1] + y, t.origin[2] + z);
      for (std::size_t x = 0; x < t.extent[0]; ++x)
        t.buf[lrow + x] = src[grow + x];
    }

  // Level-by-level, dimension-by-dimension interpolation.
  const std::size_t gorigin =
      dev::linearize(dims, t.origin[0], t.origin[1], t.origin[2]);
  for (std::size_t s = geo.top_stride; s >= 1; s >>= 1) {
    std::array<bool, 3> done{false, false, false};
    const quant::Quantizer& qz = qz_for(s);
    for (int k = 0; k < 3; ++k) {
      const int d = cfg.dim_order[k];
      if (dim_of(dims, d) == 1) continue;
      tile_pass<kCompress>(t, d, s, done, qz,
                           cfg.cubic[static_cast<std::size_t>(d)], dims, codes,
                           codes_in, gorigin);
      done[static_cast<std::size_t>(d)] = true;
    }
  }

  if constexpr (!kCompress) {
    // Write back the owned region.
    for (std::size_t z = 0; z < t.owned[2]; ++z)
      for (std::size_t y = 0; y < t.owned[1]; ++y) {
        const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
        const std::size_t grow = dev::linearize(dims, t.origin[0],
                                                t.origin[1] + y,
                                                t.origin[2] + z);
        for (std::size_t x = 0; x < t.owned[0]; ++x)
          out[grow + x] = t.buf[lrow + x];
      }
  }
}

template <bool kCompress, typename T>
void run_tiles(std::span<const T> in, std::span<T> out,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, const dev::Dim3& dims,
               double eb, const InterpConfig& cfg, int radius) {
  const Geometry geo = geometry_for(dims);
  const auto level_qz =
      make_level_quantizers(eb, cfg, geo.top_stride, radius);
  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  dev::launch_blocks(grid, [&](const dev::BlockIdx& blk) {
    run_one_tile<kCompress, T>(blk, in, out, codes, codes_in, dims, cfg, geo,
                               level_qz);
  });
}

template <typename T>
void check_compress_args(std::span<const T> data, const dev::Dim3& dims,
                         double eb) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("ginterp_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("ginterp_compress: eb must be > 0");
}

template <typename T>
GInterpOutputT<T> compress_impl(std::span<const T> data, const dev::Dim3& dims,
                                double eb, const InterpConfig& cfg,
                                int radius) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  GInterpOutputT<T> out;
  out.anchors = gather_anchors(data, dims, geo.anchor);
  // Anchors and any never-targeted point read as "perfectly predicted".
  out.codes.assign(data.size(),
                   static_cast<quant::Code>(radius));

  run_tiles<true, T>(data, {}, out.codes, {}, dims, eb, cfg, radius);
  out.outliers = quant::OutlierSetT<T>::gather(out.codes, data);
  return out;
}

template <typename T>
GInterpViewT<T> compress_ws_impl(std::span<const T> data,
                                 const dev::Dim3& dims, double eb,
                                 const InterpConfig& cfg, int radius,
                                 dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  // Arena blocks carry stale contents, so the default code must be written
  // explicitly everywhere (anchors and never-targeted points included).
  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  dev::launch_linear(
      codes.size(), [&](std::size_t i) { codes[i] = perfect; }, 1 << 14);

  run_tiles<true, T>(data, {}, codes, {}, dims, eb, cfg, radius);
  GInterpViewT<T> out;
  out.codes = codes;
  out.anchors = anchors;
  out.outliers = quant::gather_outliers<T>(codes, data, ws);
  return out;
}

/// The fused predict+histogram pass (the PR-4 stage-fusion pipeline).
///
/// Tiles are statically partitioned into contiguous ranges over a fixed
/// worker count (sized exactly like the standalone histogram kernel, so the
/// fused pass never spawns more accumulation workers than counting the codes
/// afterwards would). Each worker, per tile:
///   1. prefills the tile's owned region with the "perfectly predicted"
///      code — replacing the standalone full-array prefill launch; safe
///      because compression never *reads* codes and every global position is
///      owned by exactly one tile, so the union of owned regions covers the
///      array exactly once;
///   2. runs the unchanged tile passes (run_one_tile), which overwrite the
///      owned+targeted positions with real codes;
///   3. counts the owned region's final codes into its private banked
///      histogram while the ~4 KiB of codes are still cache-hot;
///   4. collects the owned region's outliers — (global index, original
///      value) pairs wherever the final code is the outlier marker — into a
///      private list, replacing quant::gather_outliers' two standalone
///      full-array scans over the codes.
/// Codes are bit-identical to the unfused path (same writes, same values),
/// and the folded histogram equals huffman::histogram(codes) exactly: both
/// count every position once and uint32 addition commutes, so neither the
/// tile-order partition nor the bank assignment is observable in the totals.
/// The merged outlier lists are sorted by global index before being exposed;
/// indices are unique (one per position), so the sorted sequence is exactly
/// the ascending-index order a single left-to-right scan produces, and the
/// serialized outlier blob is byte-identical to the gather_outliers output
/// no matter how tiles were partitioned across workers.
template <typename T>
GInterpFusedT<T> compress_fused_impl(std::span<const T> data,
                                     const dev::Dim3& dims, double eb,
                                     const InterpConfig& cfg, int radius,
                                     dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  const std::size_t nbins = 2 * static_cast<std::size_t>(radius);

  const auto level_qz = make_level_quantizers(eb, cfg, geo.top_stride, radius);
  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  const std::size_t ntiles = grid.volume();
  const std::size_t nworkers =
      std::min(huffman::histogram_workers(data.size()), std::max<std::size_t>(ntiles, 1));
  const std::size_t tiles_per = dev::ceil_div(ntiles, nworkers);

  auto parts =
      ws.make<std::uint32_t>(nworkers * huffman::kHistogramBanks * nbins);
  struct Outlier {
    std::uint64_t index;
    T value;
  };
  std::vector<std::vector<Outlier>> worker_outliers(nworkers);
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h =
            parts.data() + w * huffman::kHistogramBanks * nbins;
        std::fill_n(h, huffman::kHistogramBanks * nbins, 0u);
        auto& outl = worker_outliers[w];
        const std::size_t tb = w * tiles_per;
        const std::size_t te = std::min(tb + tiles_per, ntiles);
        for (std::size_t ti = tb; ti < te; ++ti) {
          const dev::Coord3 c = dev::delinearize(grid, ti);
          const dev::BlockIdx blk{c.x, c.y, c.z, ti};
          // Owned (half-open) region of this tile.
          std::size_t origin[3], owned[3];
          for (int i = 0; i < 3; ++i) {
            const std::size_t o =
                (i == 0 ? blk.x : i == 1 ? blk.y : blk.z) * dim_of(geo.tile, i);
            origin[i] = o;
            owned[i] = std::min(dim_of(geo.tile, i), dim_of(dims, i) - o);
          }
          for (std::size_t z = 0; z < owned[2]; ++z)
            for (std::size_t y = 0; y < owned[1]; ++y) {
              const std::size_t row = dev::linearize(
                  dims, origin[0], origin[1] + y, origin[2] + z);
              std::fill_n(codes.data() + row, owned[0], perfect);
            }
          run_one_tile<true, T>(blk, data, {}, codes, {}, dims, cfg, geo,
                                level_qz);
          for (std::size_t z = 0; z < owned[2]; ++z)
            for (std::size_t y = 0; y < owned[1]; ++y) {
              const std::size_t row = dev::linearize(
                  dims, origin[0], origin[1] + y, origin[2] + z);
              huffman::accumulate_banked(codes.data() + row, owned[0], h,
                                         nbins);
              for (std::size_t x = 0; x < owned[0]; ++x)
                if (codes[row + x] == quant::kOutlierMarker)
                  outl.push_back({row + x, data[row + x]});
            }
        }
      },
      1);

  std::size_t total = 0;
  for (const auto& v : worker_outliers) total += v.size();
  auto merged = ws.make<Outlier>(total);
  std::size_t pos = 0;
  for (const auto& v : worker_outliers) {
    std::copy(v.begin(), v.end(), merged.begin() + pos);
    pos += v.size();
  }
  std::sort(merged.begin(), merged.end(),
            [](const Outlier& a, const Outlier& b) { return a.index < b.index; });
  auto oindices = ws.make<std::uint64_t>(total);
  auto ovalues = ws.make<T>(total);
  for (std::size_t i = 0; i < total; ++i) {
    oindices[i] = merged[i].index;
    ovalues[i] = merged[i].value;
  }

  GInterpFusedT<T> out;
  out.pred.codes = codes;
  out.pred.anchors = anchors;
  out.pred.outliers = {oindices, ovalues};
  out.histogram =
      huffman::merge_histograms(parts, nworkers * huffman::kHistogramBanks,
                                nbins);
  return out;
}

template <typename T>
std::vector<T> decompress_impl(std::span<const quant::Code> codes,
                               std::span<const T> anchors,
                               const quant::OutlierSetT<T>& outliers,
                               const dev::Dim3& dims, double eb,
                               const InterpConfig& cfg, int radius) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  const Geometry geo = geometry_for(dims);
  // Anchor count and outlier indices come from the archive; both index into
  // the work buffer, so they must be validated before any scatter.
  if (anchors.size() != anchor_dims(dims, geo.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  outliers.check_bounds(dims.volume(), "ginterp");
  std::vector<T> work(dims.volume(), T{0});
  scatter_anchors<T>(anchors, work, dims, geo.anchor);
  outliers.scatter(work);

  std::vector<T> out(dims.volume(), T{0});
  run_tiles<false, T>(work, out, {}, codes, dims, eb, cfg, radius);
  return out;
}

}  // namespace

// In-place incremental reconstruction. The constructor performs all archive
// validation and the scatter; run_slab then reconstructs one tile-grid
// z-slab directly in `out` (closed-region loads and owned write-backs hit
// the same buffer). The safety/bit-identity argument lives with the class
// declaration and in docs/PERF.md.
template <typename T>
GInterpReconstructorT<T>::GInterpReconstructorT(
    std::span<const quant::Code> codes, std::span<const T> anchors,
    const quant::OutlierViewT<T>& outliers, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, std::span<T> out)
    : codes_(codes),
      out_(out),
      dims_(dims),
      grid_(dev::grid_for(dims, geometry_for(dims).tile)),
      geo_(geometry_for(dims)),
      cfg_(cfg),
      level_qz_(make_level_quantizers(eb, cfg, geo_.top_stride, radius)) {
  if (codes.size() != dims.volume() || out.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  // Anchor count and outlier indices come from the archive; both index into
  // the output buffer, so they must be validated before any scatter.
  if (anchors.size() != anchor_dims(dims, geo_.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  if (outliers.values.size() != outliers.indices.size())
    throw core::CorruptArchive("ginterp", 0, "outlier index/value mismatch");
  for (const auto idx : outliers.indices)
    if (idx >= dims.volume())
      throw core::CorruptArchive("ginterp", 0, "outlier index out of range");

  scatter_anchors<T>(anchors, out_, dims, geo_.anchor);
  for (std::size_t k = 0; k < outliers.indices.size(); ++k)
    out_[outliers.indices[k]] = outliers.values[k];
}

template <typename T>
std::size_t GInterpReconstructorT<T>::codes_needed(std::size_t bz) const {
  // A slab's closed regions reach one plane past the owned extent, and the
  // z-major linearization makes everything below that plane a contiguous
  // prefix of the code array.
  const std::size_t zmax = std::min<std::size_t>((bz + 1) * geo_.tile.z + 1,
                                                 dims_.z);
  return zmax * dims_.x * dims_.y;
}

template <typename T>
void GInterpReconstructorT<T>::run_slab(std::size_t bz) {
  // Four (bx, by)-parity waves: same-parity tiles are >= 2 blocks apart in
  // every in-slab direction, so their closed regions (owned + 1 border
  // plane in each positive direction) never overlap and the in-place loads
  // and write-backs of concurrently running tiles touch disjoint bytes.
  for (unsigned color = 0; color < 4; ++color) {
    const std::size_t px = color & 1u;
    const std::size_t py = color >> 1u;
    if (grid_.x <= px || grid_.y <= py) continue;
    const std::size_t nx = (grid_.x - px + 1) / 2;
    const std::size_t ny = (grid_.y - py + 1) / 2;
    dev::launch_linear(
        nx * ny,
        [&](std::size_t k) {
          const std::size_t bx = px + 2 * (k % nx);
          const std::size_t by = py + 2 * (k / nx);
          const dev::BlockIdx blk{bx, by, bz,
                                  (bz * grid_.y + by) * grid_.x + bx};
          run_one_tile<false, T>(blk, out_, out_, {}, codes_, dims_, cfg_,
                                 geo_, level_qz_);
        },
        1);
  }
}

template class GInterpReconstructorT<float>;
template class GInterpReconstructorT<double>;

namespace {

/// In-place decompression over the whole volume: scatter into `out`, then
/// every slab in ascending order. Same validation and same arithmetic as
/// decompress_impl — outputs are bit-identical (tests/test_decode_equiv.cc).
template <typename T>
void decompress_into_impl(std::span<const quant::Code> codes,
                          std::span<const T> anchors,
                          const quant::OutlierViewT<T>& outliers,
                          const dev::Dim3& dims, double eb,
                          const InterpConfig& cfg, int radius,
                          std::span<T> out, dev::Workspace& ws) {
  (void)ws;  // no staging buffer anymore; kept for call-site stability
  GInterpReconstructorT<T> recon(codes, anchors, outliers, dims, eb, cfg,
                                 radius, out);
  for (std::size_t bz = 0; bz < recon.slab_count(); ++bz) recon.run_slab(bz);
}

}  // namespace

GInterpOutputT<float> ginterp_compress(std::span<const float> data,
                                       const dev::Dim3& dims, double eb,
                                       const InterpConfig& cfg, int radius) {
  return compress_impl<float>(data, dims, eb, cfg, radius);
}

GInterpOutputT<double> ginterp_compress(std::span<const double> data,
                                        const dev::Dim3& dims, double eb,
                                        const InterpConfig& cfg, int radius) {
  return compress_impl<double>(data, dims, eb, cfg, radius);
}

GInterpViewT<float> ginterp_compress(std::span<const float> data,
                                     const dev::Dim3& dims, double eb,
                                     const InterpConfig& cfg, int radius,
                                     dev::Workspace& ws) {
  return compress_ws_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpViewT<double> ginterp_compress(std::span<const double> data,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius,
                                      dev::Workspace& ws) {
  return compress_ws_impl<double>(data, dims, eb, cfg, radius, ws);
}

GInterpFusedT<float> ginterp_compress_fused(std::span<const float> data,
                                            const dev::Dim3& dims, double eb,
                                            const InterpConfig& cfg, int radius,
                                            dev::Workspace& ws) {
  return compress_fused_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpFusedT<double> ginterp_compress_fused(std::span<const double> data,
                                             const dev::Dim3& dims, double eb,
                                             const InterpConfig& cfg,
                                             int radius, dev::Workspace& ws) {
  return compress_fused_impl<double>(data, dims, eb, cfg, radius, ws);
}

void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const float> anchors,
                             const quant::OutlierViewT<float>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<float> out, dev::Workspace& ws) {
  decompress_into_impl<float>(codes, anchors, outliers, dims, eb, cfg, radius,
                              out, ws);
}

void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const double> anchors,
                             const quant::OutlierViewT<double>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<double> out, dev::Workspace& ws) {
  decompress_into_impl<double>(codes, anchors, outliers, dims, eb, cfg, radius,
                               out, ws);
}

std::vector<float> ginterp_decompress(std::span<const quant::Code> codes,
                                      std::span<const float> anchors,
                                      const quant::OutlierSetT<float>& outliers,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius) {
  return decompress_impl<float>(codes, anchors, outliers, dims, eb, cfg,
                                radius);
}

std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius) {
  return decompress_impl<double>(codes, anchors, outliers, dims, eb, cfg,
                                 radius);
}

}  // namespace szi::predictor
