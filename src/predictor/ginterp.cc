#include "predictor/ginterp.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "core/bytes.hh"
#include "device/launch.hh"
#include "device/simd.hh"
#include "huffman/histogram.hh"
#include "predictor/anchor.hh"
#include "predictor/spline.hh"

namespace szi::predictor {

namespace {

/// Largest closed-tile volume across the per-rank geometries (33*9*9).
constexpr std::size_t kMaxTileVolume = 33 * 9 * 9;

/// Tail padding behind the used tile region. The stride-2 AVX2 interp walk
/// deinterleaves 16-float windows whose last float sits one element past
/// the final stride-2 lane it actually uses; padding keeps that discarded
/// over-read inside the array when the used region fills the buffer
/// exactly. Never written or consumed.
constexpr std::size_t kTilePad = 8;

template <typename T>
struct TileView {
  std::array<T, kMaxTileVolume + kTilePad> buf;
  std::array<std::size_t, 3> origin;  ///< global coords of local (0,0,0)
  std::array<std::size_t, 3> extent;  ///< closed local extent per dim
  std::array<std::size_t, 3> lstride; ///< local linear strides per dim
  std::array<std::size_t, 3> owned;   ///< owned extent (<= tile size)
};

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// Immutable copy of one global z-plane (dims.x*dims.y elements) substituted
/// for the source buffer when a tile's closed-region load crosses it. The
/// slab-parallel reconstructor uses this to read +z borders from a
/// post-scatter snapshot instead of a neighbor slab's in-flight output.
template <typename T>
struct PlaneOverride {
  const T* plane = nullptr;
  std::size_t z = 0;
};

#if defined(__x86_64__)

// ---- AVX2 interior-cubic decompress walk (f32) -------------------------
//
// The finest interpolation level's interior-cubic planes dominate
// decompression: every pass with the fast-varying dimension already done
// (or pending) walks targets at local stride 1 or 2 while reading four
// neighbor rows at the same stride. These kernels run 8 targets per step,
// replicating the scalar arithmetic operation for operation:
//   cubic_nak      (((-a) + (9*b)) + (9*c) - d) * (1/16)       [f32 ops]
//   cubic_natural  (((-3*a) + (23*b)) + (23*c)) - (3*d), *(1/40)
//   dequantize     f32(f64(pred) + twice_eb * f64(stored - radius)),
//                  marker code 0 keeps the scattered value
// No FMA exists at baseline x86-64 and target("avx2") does not enable it,
// so neither side can contract the mul/add chains — each lane rounds where
// the scalar rounds and the reconstruction is bit-identical
// (tests/test_decode_equiv.cc + the SZI_NO_AVX2 determinism instance).

/// Even-indexed floats of the 16-float window at `p` (stride-2 gather).
/// Reads p[0..15]; the odd lanes are discarded, and the one float past the
/// last used element stays inside the tile buffer thanks to kTilePad.
[[gnu::target("avx2")]] inline __m256 deinterleave_even(const float* p) {
  const __m256 a = _mm256_loadu_ps(p);
  const __m256 b = _mm256_loadu_ps(p + 8);
  const __m256 s = _mm256_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0));
  return _mm256_castpd_ps(
      _mm256_permute4x64_pd(_mm256_castps_pd(s), _MM_SHUFFLE(3, 1, 2, 0)));
}

/// Scatters 8 floats to p[0], p[2], ..., p[14] without touching the odd
/// lanes (maskstore leaves unselected lanes unwritten).
[[gnu::target("avx2")]] inline void interleave_even_store(float* p, __m256 r) {
  const __m256i lo = _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
  const __m256i hi = _mm256_setr_epi32(4, 4, 5, 5, 6, 6, 7, 7);
  const __m256i even = _mm256_setr_epi32(-1, 0, -1, 0, -1, 0, -1, 0);
  _mm256_maskstore_ps(p, even, _mm256_permutevar8x32_ps(r, lo));
  _mm256_maskstore_ps(p + 8, even, _mm256_permutevar8x32_ps(r, hi));
}

/// quant::Quantizer::dequantize for 8 lanes: two f64x4 halves compute
/// pred + twice_eb * (stored - radius) with the scalar's rounding sequence
/// (one mul, one add, one f64->f32 round-to-nearest-even); marker lanes
/// keep the scattered value.
[[gnu::target("avx2")]] inline __m256 dequantize8(__m256 pred, __m256i stored,
                                                  __m256 scattered,
                                                  __m256d twice_eb,
                                                  __m256i radius) {
  const __m256i q = _mm256_sub_epi32(stored, radius);
  const __m256d plo = _mm256_cvtps_pd(_mm256_castps256_ps128(pred));
  const __m256d phi = _mm256_cvtps_pd(_mm256_extractf128_ps(pred, 1));
  const __m256d qlo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(q));
  const __m256d qhi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(q, 1));
  const __m128 rlo =
      _mm256_cvtpd_ps(_mm256_add_pd(plo, _mm256_mul_pd(twice_eb, qlo)));
  const __m128 rhi =
      _mm256_cvtpd_ps(_mm256_add_pd(phi, _mm256_mul_pd(twice_eb, qhi)));
  const __m256 r = _mm256_set_m128(rhi, rlo);
  const __m256 keep = _mm256_castsi256_ps(
      _mm256_cmpeq_epi32(stored, _mm256_setzero_si256()));
  return _mm256_blendv_ps(r, scattered, keep);
}

/// 8-lane spline_predict interior case, scalar op order per lane.
template <bool kNak>
[[gnu::target("avx2")]] inline __m256 cubic8(__m256 a, __m256 b, __m256 c,
                                             __m256 d) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  if constexpr (kNak) {
    const __m256 nine = _mm256_set1_ps(9.0f);
    __m256 t = _mm256_add_ps(_mm256_xor_ps(a, sign), _mm256_mul_ps(nine, b));
    t = _mm256_add_ps(t, _mm256_mul_ps(nine, c));
    t = _mm256_sub_ps(t, d);
    return _mm256_mul_ps(t, _mm256_set1_ps(1.0f / 16.0f));
  } else {
    __m256 t = _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(-3.0f), a),
                             _mm256_mul_ps(_mm256_set1_ps(23.0f), b));
    t = _mm256_add_ps(t, _mm256_mul_ps(_mm256_set1_ps(23.0f), c));
    t = _mm256_sub_ps(t, _mm256_mul_ps(_mm256_set1_ps(3.0f), d));
    return _mm256_mul_ps(t, _mm256_set1_ps(1.0f / 40.0f));
  }
}

/// Vector part of one interior-cubic decompress row: processes the longest
/// prefix of the `n` targets it can in 8-lane steps and returns how many it
/// handled (the caller finishes the tail with the scalar walk). `row` is
/// the first target in the (private, padded) tile buffer, `cp` the first
/// target's quant-code, `avail` the codes readable from `cp` on — the
/// stride-2 code load reads a 16-code window, so the last vector is skipped
/// when the window would cross the end of the (shared, unpadded) code
/// array.
template <bool kNak, int kStride>
[[gnu::target("avx2")]] std::size_t cubic_row_avx2(
    float* row, std::ptrdiff_t o1, std::ptrdiff_t o3, const quant::Code* cp,
    std::size_t avail, std::size_t n, double twice_eb_v, int radius_v) {
  const __m256d twice_eb = _mm256_set1_pd(twice_eb_v);
  const __m256i radius = _mm256_set1_epi32(radius_v);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const std::size_t off = k * kStride;
    __m256 a, b, c, d, scattered;
    __m256i stored;
    if constexpr (kStride == 1) {
      a = _mm256_loadu_ps(row + off - o3);
      b = _mm256_loadu_ps(row + off - o1);
      c = _mm256_loadu_ps(row + off + o1);
      d = _mm256_loadu_ps(row + off + o3);
      scattered = _mm256_loadu_ps(row + off);
      stored = _mm256_cvtepu16_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cp + off)));
    } else {
      if (off + 16 > avail) break;  // code window would overrun the array
      a = deinterleave_even(row + off - o3);
      b = deinterleave_even(row + off - o1);
      c = deinterleave_even(row + off + o1);
      d = deinterleave_even(row + off + o3);
      scattered = deinterleave_even(row + off);
      // Little-endian: the low u16 of each u32 in the window is the code at
      // even offset 0, 2, ..., 14.
      stored = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cp + off)),
          _mm256_set1_epi32(0xFFFF));
    }
    const __m256 r =
        dequantize8(cubic8<kNak>(a, b, c, d), stored, scattered, twice_eb,
                    radius);
    if constexpr (kStride == 1) {
      _mm256_storeu_ps(row + off, r);
    } else {
      interleave_even_store(row + off, r);
    }
  }
  return k;
}

#endif  // __x86_64__

/// One (stride, dimension) interpolation pass over a tile. Shared between
/// compression and decompression; `kCompress` selects which side of the
/// quantizer runs.
///
/// Interior/rim optimization. The naive walk (retained verbatim in
/// predictor/reference.cc) re-derived four neighbor-availability flags, a
/// three-multiply dev::linearize, and an ownership test for *every* target
/// point. But within one pass every quantity that used to be guarded depends
/// only on the coordinate `cd` along the target dimension d:
///   - availability (ha/hb/hc/hd) is a function of cd alone, so the spline
///     dispatch hoists to one selection per cd value — the interior cd range
///     (all four neighbors present) runs the pure cubic kernel with zero
///     per-point branches, and the rim cd values (cd = s, and the trailing
///     one-sided cases) each get their own specialized branchless walk;
///   - ownership along d is `cd < owned[d]`; ownership along the plane dims
///     splits the inner loop into an emitting prefix and a (<= 1 iteration)
///     non-emitting border tail instead of a per-point test;
///   - local and global indices advance by per-iteration constant strides,
///     replacing the per-point multiplies.
/// Iteration order across points of one pass is free: a pass writes only
/// odd multiples of s along d and reads only even multiples, so no written
/// value is ever an input to the same pass. Per-point arithmetic (spline
/// formula, quantizer) is untouched — codes and recon are byte-identical to
/// the reference by construction, which tests/test_predictor_equiv.cc
/// asserts over odd/even/tiny grids.
template <bool kCompress, typename T>
void tile_pass(TileView<T>& t, int d, std::size_t s,
               const std::array<bool, 3>& done, const quant::Quantizer& qz,
               CubicKind kind, const dev::Dim3& dims,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, std::size_t gorigin) {
  // Plane dims: u is the faster-varying one (x unless d == 0), v the other.
  const auto u = static_cast<std::size_t>(d == 0 ? 1 : 0);
  const auto v = static_cast<std::size_t>(d == 2 ? 1 : 2);
  const auto dd = static_cast<std::size_t>(d);

  // The target dim walks odd multiples of s; dims already interpolated at
  // this level walk multiples of s; pending dims walk multiples of 2s
  // (§V-A's pass ordering).
  const std::size_t step_u = done[u] ? s : 2 * s;
  const std::size_t step_v = done[v] ? s : 2 * s;
  const std::size_t ext_d = t.extent[dd];

  const std::size_t ls_u = t.lstride[u];
  const std::size_t ls_v = t.lstride[v];
  const std::size_t ls_d = t.lstride[dd];
  const std::size_t gs_all[3] = {1, dims.x, dims.x * dims.y};
  const std::size_t gs_u = gs_all[u], gs_v = gs_all[v], gs_d = gs_all[dd];

  // Neighbor offsets along d, as signed offsets from the target pointer.
  const auto o1 = static_cast<std::ptrdiff_t>(s * ls_d);
  const std::ptrdiff_t o3 = 3 * o1;

  // Inner-loop trip counts: total, and the emitting prefix (pu < owned[u]).
  const std::size_t n_u = dev::ceil_div(t.extent[u], step_u);
  const std::size_t n_u_owned = std::min(n_u, dev::ceil_div(t.owned[u], step_u));

  for (std::size_t cd = s; cd < ext_d; cd += 2 * s) {
    // Neighbor availability for this whole plane (hb := cd >= s holds by
    // construction of the walk).
    const bool ha = cd >= 3 * s;
    const bool hc = cd + s < ext_d;
    const bool hd = cd + 3 * s < ext_d;
    const bool owned_d = cd < t.owned[dd];

    // One full plane with a fixed predictor functor; `pred(p)` reads only
    // the neighbors its availability case guarantees exist.
    auto walk = [&](auto pred) {
      for (std::size_t pv = 0; pv < t.extent[v]; pv += step_v) {
        T* p = t.buf.data() + cd * ls_d + pv * ls_v;
        std::size_t gidx = gorigin + cd * gs_d + pv * gs_v;
        const std::size_t dp = step_u * ls_u;
        const std::size_t dg = step_u * gs_u;
        if constexpr (kCompress) {
          const std::size_t n_emit =
              owned_d && pv < t.owned[v] ? n_u_owned : 0;
          std::size_t k = 0;
          for (; k < n_emit; ++k, p += dp, gidx += dg) {
            const auto r = qz.quantize(*p, pred(p));
            *p = r.recon;
            codes[gidx] = r.stored;
          }
          // Border tail: recon feeds later passes, but no code is owned.
          for (; k < n_u; ++k, p += dp) *p = qz.quantize(*p, pred(p)).recon;
        } else {
          // buf[idx] holds the scattered original when the code is the
          // outlier marker; dequantize() returns it unchanged then.
          for (std::size_t k = 0; k < n_u; ++k, p += dp, gidx += dg)
            *p = qz.dequantize(codes_in[gidx], pred(p), *p);
        }
      }
    };

    if (hc) {
      if (ha && hd) {
#if defined(__x86_64__)
        // Interior-cubic decompression at unit or double local stride (the
        // fast-varying dimension at the finest levels) takes the 8-lane
        // AVX2 walk when the host has it; the scalar tail below the vector
        // prefix runs the exact expressions the generic walk would.
        if constexpr (!kCompress && std::is_same_v<T, float>) {
          const std::size_t dp = step_u * ls_u;
          const std::size_t dg = step_u * gs_u;
          if ((dp == 1 || dp == 2) && dg == dp && n_u >= 8 &&
              dev::has_avx2()) {
            const bool nak = kind == CubicKind::NotAKnot;
            const double teb = 2.0 * qz.eb();
            const int rad = qz.radius();
            for (std::size_t pv = 0; pv < t.extent[v]; pv += step_v) {
              float* p = t.buf.data() + cd * ls_d + pv * ls_v;
              std::size_t gidx = gorigin + cd * gs_d + pv * gs_v;
              const quant::Code* cp = codes_in.data() + gidx;
              const std::size_t avail = codes_in.size() - gidx;
              std::size_t k;
              if (dp == 1)
                k = nak ? cubic_row_avx2<true, 1>(p, o1, o3, cp, avail, n_u,
                                                  teb, rad)
                        : cubic_row_avx2<false, 1>(p, o1, o3, cp, avail, n_u,
                                                   teb, rad);
              else
                k = nak ? cubic_row_avx2<true, 2>(p, o1, o3, cp, avail, n_u,
                                                  teb, rad)
                        : cubic_row_avx2<false, 2>(p, o1, o3, cp, avail, n_u,
                                                   teb, rad);
              p += k * dp;
              gidx += k * dg;
              for (; k < n_u; ++k, p += dp, gidx += dg) {
                const float pr = nak
                                     ? cubic_nak(p[-o3], p[-o1], p[o1], p[o3])
                                     : cubic_natural(p[-o3], p[-o1], p[o1],
                                                     p[o3]);
                *p = qz.dequantize(codes_in[gidx], pr, *p);
              }
            }
            continue;
          }
        }
#endif
        // Interior: the branchless cubic walk (the overwhelming majority of
        // points at fine strides).
        if (kind == CubicKind::NotAKnot)
          walk([=](const T* p) { return cubic_nak(p[-o3], p[-o1], p[o1], p[o3]); });
        else
          walk([=](const T* p) {
            return cubic_natural(p[-o3], p[-o1], p[o1], p[o3]);
          });
      } else if (ha) {
        walk([=](const T* p) { return quad_left(p[-o3], p[-o1], p[o1]); });
      } else if (hd) {
        walk([=](const T* p) { return quad_right(p[-o1], p[o1], p[o3]); });
      } else {
        walk([=](const T* p) { return linear(p[-o1], p[o1]); });
      }
    } else {
      walk([=](const T* p) { return p[-o1]; });  // one-sided nearest copy
    }
  }
}

/// Per-level quantizers for a field, indexed by level - 1.
std::vector<quant::Quantizer> make_level_quantizers(double eb,
                                                    const InterpConfig& cfg,
                                                    const Geometry& geo,
                                                    int radius) {
  const int nlevels = interp_levels(geo);
  std::vector<quant::Quantizer> level_qz;
  level_qz.reserve(static_cast<std::size_t>(nlevels));
  for (int l = 1; l <= nlevels; ++l)
    level_qz.emplace_back(level_eb(eb, cfg.alpha, l), radius);
  return level_qz;
}

// ---- Level classification helpers ---------------------------------------
//
// A dimension is "interpolated" when its per-dim anchor stride exceeds 1;
// for those dims the anchor stride is uniformly 2^interp_levels(geo).
// Degenerate dims (anchor stride 1 — e.g. z under the 2D geometry) hold an
// anchor plane at every coordinate, so they never constrain a position's
// level. A non-anchor position's level is the 2-adic valuation of the OR of
// its interpolated coordinates, plus one.

struct InterpDims {
  bool ix, iy, iz;
  int nlevels;
};

InterpDims interp_dims_of(const dev::Dim3& dims) {
  const Geometry geo = geometry_for(dims);
  return {geo.anchor.x > 1, geo.anchor.y > 1, geo.anchor.z > 1,
          interp_levels(geo)};
}

/// Multiples of m in [0, n).
std::size_t nmul(std::size_t n, std::size_t m) {
  return n == 0 ? 0 : (n - 1) / m + 1;
}

/// Count along one axis of the stride-m grid positions in [0, n);
/// non-interpolated axes are unconstrained.
std::size_t axis_count(std::size_t n, bool interp, std::size_t m) {
  return interp ? nmul(n, m) : n;
}

/// Number of level-v (0-based) positions inside the box [0,a)x[0,b)x[0,c):
/// the stride-s grid minus the stride-2s grid over the interpolated dims.
/// With s = top_stride the 2s grid is exactly the anchor grid, so the level
/// volumes plus the anchor count telescope to the full box volume.
std::size_t level_box(std::size_t a, std::size_t b, std::size_t c,
                      const InterpDims& id, std::size_t s) {
  return axis_count(a, id.ix, s) * axis_count(b, id.iy, s) *
             axis_count(c, id.iz, s) -
         axis_count(a, id.ix, 2 * s) * axis_count(b, id.iy, 2 * s) *
             axis_count(c, id.iz, 2 * s);
}

/// Positions of level v within one x-row: start/step of the arithmetic
/// progression, or step == 0 when the row holds none. vyz is the valuation
/// of the row's interpolated y/z coordinates: rows at exactly the level's
/// stride own every stride-s x, coarser rows only the odd multiples.
struct RowPattern {
  std::size_t start = 0, step = 0;
};

RowPattern row_pattern(std::size_t y, std::size_t z, const InterpDims& id,
                       int v, std::size_t s) {
  const std::size_t m = (id.iy ? y : 0) | (id.iz ? z : 0);
  const int vyz = m == 0 ? id.nlevels : std::countr_zero(m);
  if (vyz < v) return {0, 0};
  if (vyz == v) return {0, s};
  return {s, 2 * s};
}

/// Rank of the first level-v position of row (y, z) at or after column x0:
/// the closed-form count of level-v positions strictly before it in
/// z-major linear order. Rows and planes contribute via the same grid
/// differencing as level_box; divisibility of y/z by s and 2s gates the
/// partial-plane and partial-row terms.
std::size_t level_rank(const dev::Dim3& dims, const InterpDims& id, int v,
                       std::size_t x0, std::size_t y, std::size_t z) {
  const std::size_t s = std::size_t{1} << v;
  const auto on = [](std::size_t c, bool interp, std::size_t m) {
    return !interp || c % m == 0;
  };
  std::size_t r = level_box(dims.x, dims.y, z, id, s);
  if (on(z, id.iz, s))
    r += axis_count(dims.x, id.ix, s) * axis_count(y, id.iy, s);
  if (on(z, id.iz, 2 * s))
    r -= axis_count(dims.x, id.ix, 2 * s) * axis_count(y, id.iy, 2 * s);
  const RowPattern p = row_pattern(y, z, id, v, s);
  if (p.step != 0) {
    const std::size_t first =
        x0 <= p.start
            ? p.start
            : p.start + dev::ceil_div(x0 - p.start, p.step) * p.step;
    r += (first - p.start) / p.step;
  }
  return r;
}

/// The complete per-tile interpolation body (load closed region, run every
/// (stride, dim) pass, write back the owned region on decompression) for
/// tile `blk`. Shared between the block-parallel launch in run_tiles and the
/// fused compress path, which iterates tiles inside its own worker loop so
/// it can prefill and histogram the owned codes while they are cache-hot.
template <bool kCompress, typename T>
void run_one_tile(const dev::BlockIdx& blk, std::span<const T> in,
                  std::span<T> out, std::span<quant::Code> codes,
                  std::span<const quant::Code> codes_in, const dev::Dim3& dims,
                  const InterpConfig& cfg, const Geometry& geo,
                  std::span<const quant::Quantizer> level_qz,
                  PlaneOverride<T> po = {}, std::size_t min_stride = 1) {
  TileView<T> t;
  t.origin = {blk.x * geo.tile.x, blk.y * geo.tile.y, blk.z * geo.tile.z};
  for (int i = 0; i < 3; ++i) {
    const std::size_t nd = dim_of(dims, i);
    const std::size_t td = dim_of(geo.tile, i);
    t.owned[i] = std::min(td, nd - t.origin[i]);
    t.extent[i] = std::min(td + 1, nd - t.origin[i]);
  }
  t.lstride = {1, t.extent[0], t.extent[0] * t.extent[1]};

  // Load the closed region, one contiguous x-row memcpy at a time (local
  // and global x strides are both 1). For the slab-parallel reconstructor a
  // z-plane crossing into the next slab loads from the immutable snapshot
  // in `po` instead of `in`, so the load never races a neighbor slab's
  // writes; in all other paths `in` is a read-only source.
  const std::span<const T> src = in;
  for (std::size_t z = 0; z < t.extent[2]; ++z) {
    const std::size_t gz = t.origin[2] + z;
    const T* splane = (po.plane != nullptr && gz == po.z) ? po.plane : nullptr;
    for (std::size_t y = 0; y < t.extent[1]; ++y) {
      const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
      const T* grow = splane != nullptr
                          ? splane + (t.origin[1] + y) * dims.x + t.origin[0]
                          : src.data() + dev::linearize(dims, t.origin[0],
                                                        t.origin[1] + y, gz);
      std::memcpy(t.buf.data() + lrow, grow, t.extent[0] * sizeof(T));
    }
  }

  // Level-by-level, dimension-by-dimension interpolation. A preview decode
  // (min_stride > 1) stops before the finer levels: a pass at stride s
  // reads and writes only stride-s grid positions, so the skipped levels
  // never feed the ones that ran.
  const std::size_t gorigin =
      dev::linearize(dims, t.origin[0], t.origin[1], t.origin[2]);
  for (std::size_t s = geo.top_stride; s >= min_stride; s >>= 1) {
    std::array<bool, 3> done{false, false, false};
    const quant::Quantizer& qz =
        level_qz[static_cast<std::size_t>(level_of_stride(s) - 1)];
    for (int k = 0; k < 3; ++k) {
      const int d = cfg.dim_order[k];
      if (dim_of(dims, d) == 1) continue;
      tile_pass<kCompress>(t, d, s, done, qz,
                           cfg.cubic[static_cast<std::size_t>(d)], dims, codes,
                           codes_in, gorigin);
      done[static_cast<std::size_t>(d)] = true;
    }
  }

  if constexpr (!kCompress) {
    // Write back the owned region, again as contiguous x-row memcpys.
    for (std::size_t z = 0; z < t.owned[2]; ++z)
      for (std::size_t y = 0; y < t.owned[1]; ++y) {
        const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
        const std::size_t grow = dev::linearize(dims, t.origin[0],
                                                t.origin[1] + y,
                                                t.origin[2] + z);
        std::memcpy(out.data() + grow, t.buf.data() + lrow,
                    t.owned[0] * sizeof(T));
      }
  }
}

/// run_one_tile<false> against a box-local buffer: tile `blk` is addressed
/// in global tile-grid coordinates and its clamps (origin/owned/extent) use
/// the GLOBAL dims — identical to the full decompressor's — but the loads,
/// write-backs and code lookups are box-local: `box` and `codes_in` span
/// the closed box [box_lo, box_lo + box_dims), which must contain the
/// tile's whole closed region. tile_pass consumes dims only through its
/// linear strides, so handing it the box dims with a box-local `gorigin`
/// walks byte-identical arithmetic over re-based indices; the AVX2
/// vector/scalar split may land elsewhere (codes_in ends sooner), which is
/// immaterial because the scalar tail computes the exact same expressions.
template <typename T>
void run_one_tile_box(const dev::BlockIdx& blk, std::span<T> box,
                      std::span<const quant::Code> codes_in,
                      const dev::Dim3& dims, const dev::Dim3& box_lo,
                      const dev::Dim3& box_dims, const InterpConfig& cfg,
                      const Geometry& geo,
                      std::span<const quant::Quantizer> level_qz,
                      PlaneOverride<T> po = {}) {
  TileView<T> t;
  t.origin = {blk.x * geo.tile.x, blk.y * geo.tile.y, blk.z * geo.tile.z};
  for (int i = 0; i < 3; ++i) {
    const std::size_t nd = dim_of(dims, i);
    const std::size_t td = dim_of(geo.tile, i);
    t.owned[i] = std::min(td, nd - t.origin[i]);
    t.extent[i] = std::min(td + 1, nd - t.origin[i]);
  }
  t.lstride = {1, t.extent[0], t.extent[0] * t.extent[1]};

  // Box-local tile origin; the plan guarantees origin >= box_lo and
  // origin + extent <= box_lo + box_dims per axis.
  const std::array<std::size_t, 3> bo = {t.origin[0] - box_lo.x,
                                         t.origin[1] - box_lo.y,
                                         t.origin[2] - box_lo.z};

  // Load the closed region box-locally; a +z plane crossing an interior
  // slab boundary loads from the box-sized snapshot in `po`, exactly like
  // the full reconstructor's cross-slab load.
  for (std::size_t z = 0; z < t.extent[2]; ++z) {
    const std::size_t gz = t.origin[2] + z;
    const T* splane = (po.plane != nullptr && gz == po.z) ? po.plane : nullptr;
    for (std::size_t y = 0; y < t.extent[1]; ++y) {
      const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
      const T* grow =
          splane != nullptr
              ? splane + (bo[1] + y) * box_dims.x + bo[0]
              : box.data() +
                    dev::linearize(box_dims, bo[0], bo[1] + y, bo[2] + z);
      std::memcpy(t.buf.data() + lrow, grow, t.extent[0] * sizeof(T));
    }
  }

  const std::size_t gorigin = dev::linearize(box_dims, bo[0], bo[1], bo[2]);
  for (std::size_t s = geo.top_stride; s >= 1; s >>= 1) {
    std::array<bool, 3> done{false, false, false};
    const quant::Quantizer& qz =
        level_qz[static_cast<std::size_t>(level_of_stride(s) - 1)];
    for (int k = 0; k < 3; ++k) {
      const int d = cfg.dim_order[k];
      // Degenerate dims skip on the GLOBAL dims, as in run_one_tile.
      if (dim_of(dims, d) == 1) continue;
      tile_pass<false>(t, d, s, done, qz,
                       cfg.cubic[static_cast<std::size_t>(d)], box_dims, {},
                       codes_in, gorigin);
      done[static_cast<std::size_t>(d)] = true;
    }
  }

  // Write back the owned region box-locally.
  for (std::size_t z = 0; z < t.owned[2]; ++z)
    for (std::size_t y = 0; y < t.owned[1]; ++y) {
      const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
      const std::size_t grow =
          dev::linearize(box_dims, bo[0], bo[1] + y, bo[2] + z);
      std::memcpy(box.data() + grow, t.buf.data() + lrow,
                  t.owned[0] * sizeof(T));
    }
}

template <bool kCompress, typename T>
void run_tiles(std::span<const T> in, std::span<T> out,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, const dev::Dim3& dims,
               double eb, const InterpConfig& cfg, int radius,
               std::size_t min_stride = 1) {
  const Geometry geo = geometry_for(dims);
  const auto level_qz = make_level_quantizers(eb, cfg, geo, radius);
  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  dev::launch_blocks(grid, [&](const dev::BlockIdx& blk) {
    run_one_tile<kCompress, T>(blk, in, out, codes, codes_in, dims, cfg, geo,
                               level_qz, {}, min_stride);
  });
}

template <typename T>
void check_compress_args(std::span<const T> data, const dev::Dim3& dims,
                         double eb) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("ginterp_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("ginterp_compress: eb must be > 0");
}

template <typename T>
GInterpOutputT<T> compress_impl(std::span<const T> data, const dev::Dim3& dims,
                                double eb, const InterpConfig& cfg,
                                int radius) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  GInterpOutputT<T> out;
  out.anchors = gather_anchors(data, dims, geo.anchor);
  // Anchors and any never-targeted point read as "perfectly predicted".
  out.codes.assign(data.size(),
                   static_cast<quant::Code>(radius));

  run_tiles<true, T>(data, {}, out.codes, {}, dims, eb, cfg, radius);
  out.outliers = quant::OutlierSetT<T>::gather(out.codes, data);
  return out;
}

template <typename T>
GInterpViewT<T> compress_ws_impl(std::span<const T> data,
                                 const dev::Dim3& dims, double eb,
                                 const InterpConfig& cfg, int radius,
                                 dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  // Arena blocks carry stale contents, so the default code must be written
  // explicitly everywhere (anchors and never-targeted points included).
  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  dev::launch_linear(
      codes.size(), [&](std::size_t i) { codes[i] = perfect; }, 1 << 14);

  run_tiles<true, T>(data, {}, codes, {}, dims, eb, cfg, radius);
  GInterpViewT<T> out;
  out.codes = codes;
  out.anchors = anchors;
  out.outliers = quant::gather_outliers<T>(codes, data, ws);
  return out;
}

/// The fused predict+histogram pass (the PR-4 stage-fusion pipeline).
///
/// Tiles are statically partitioned into contiguous ranges over a fixed
/// worker count (sized exactly like the standalone histogram kernel, so the
/// fused pass never spawns more accumulation workers than counting the codes
/// afterwards would). Each worker, per tile:
///   1. prefills the tile's owned region with the "perfectly predicted"
///      code — replacing the standalone full-array prefill launch; safe
///      because compression never *reads* codes and every global position is
///      owned by exactly one tile, so the union of owned regions covers the
///      array exactly once;
///   2. runs the unchanged tile passes (run_one_tile), which overwrite the
///      owned+targeted positions with real codes;
///   3. counts the owned region's final codes into its private banked
///      histogram while the ~4 KiB of codes are still cache-hot;
///   4. collects the owned region's outliers — (global index, original
///      value) pairs wherever the final code is the outlier marker — into a
///      private list, replacing quant::gather_outliers' two standalone
///      full-array scans over the codes.
/// Codes are bit-identical to the unfused path (same writes, same values),
/// and the folded histogram equals huffman::histogram(codes) exactly: both
/// count every position once and uint32 addition commutes, so neither the
/// tile-order partition nor the bank assignment is observable in the totals.
/// The merged outlier lists are sorted by global index before being exposed;
/// indices are unique (one per position), so the sorted sequence is exactly
/// the ascending-index order a single left-to-right scan produces, and the
/// serialized outlier blob is byte-identical to the gather_outliers output
/// no matter how tiles were partitioned across workers.
template <typename T>
GInterpFusedT<T> compress_fused_impl(std::span<const T> data,
                                     const dev::Dim3& dims, double eb,
                                     const InterpConfig& cfg, int radius,
                                     dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  const std::size_t nbins = 2 * static_cast<std::size_t>(radius);

  const auto level_qz = make_level_quantizers(eb, cfg, geo, radius);
  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  const std::size_t ntiles = grid.volume();
  const std::size_t nworkers =
      std::min(huffman::histogram_workers(data.size()), std::max<std::size_t>(ntiles, 1));
  const std::size_t tiles_per = dev::ceil_div(ntiles, nworkers);

  auto parts =
      ws.make<std::uint32_t>(nworkers * huffman::kHistogramBanks * nbins);
  struct Outlier {
    std::uint64_t index;
    T value;
  };
  std::vector<std::vector<Outlier>> worker_outliers(nworkers);
  // Private-slot audit (mirrors huffman::histogram): `w` is the launch loop
  // index, not a thread id, so each of the nworkers slots is written by
  // exactly one logical worker even when this launch runs nested inside
  // another parallel_for and degrades to a sequential inline walk.
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h =
            parts.data() + w * huffman::kHistogramBanks * nbins;
        std::fill_n(h, huffman::kHistogramBanks * nbins, 0u);
        auto& outl = worker_outliers[w];
        const std::size_t tb = w * tiles_per;
        const std::size_t te = std::min(tb + tiles_per, ntiles);
        for (std::size_t ti = tb; ti < te; ++ti) {
          const dev::Coord3 c = dev::delinearize(grid, ti);
          const dev::BlockIdx blk{c.x, c.y, c.z, ti};
          // Owned (half-open) region of this tile.
          std::size_t origin[3], owned[3];
          for (int i = 0; i < 3; ++i) {
            const std::size_t o =
                (i == 0 ? blk.x : i == 1 ? blk.y : blk.z) * dim_of(geo.tile, i);
            origin[i] = o;
            owned[i] = std::min(dim_of(geo.tile, i), dim_of(dims, i) - o);
          }
          for (std::size_t z = 0; z < owned[2]; ++z)
            for (std::size_t y = 0; y < owned[1]; ++y) {
              const std::size_t row = dev::linearize(
                  dims, origin[0], origin[1] + y, origin[2] + z);
              std::fill_n(codes.data() + row, owned[0], perfect);
            }
          run_one_tile<true, T>(blk, data, {}, codes, {}, dims, cfg, geo,
                                level_qz);
          for (std::size_t z = 0; z < owned[2]; ++z)
            for (std::size_t y = 0; y < owned[1]; ++y) {
              const std::size_t row = dev::linearize(
                  dims, origin[0], origin[1] + y, origin[2] + z);
              huffman::accumulate_banked(codes.data() + row, owned[0], h,
                                         nbins);
              for (std::size_t x = 0; x < owned[0]; ++x)
                if (codes[row + x] == quant::kOutlierMarker)
                  outl.push_back({row + x, data[row + x]});
            }
        }
      },
      1);

  std::size_t total = 0;
  for (const auto& v : worker_outliers) total += v.size();
  auto merged = ws.make<Outlier>(total);
  std::size_t pos = 0;
  for (const auto& v : worker_outliers) {
    std::copy(v.begin(), v.end(), merged.begin() + pos);
    pos += v.size();
  }
  std::sort(merged.begin(), merged.end(),
            [](const Outlier& a, const Outlier& b) { return a.index < b.index; });
  auto oindices = ws.make<std::uint64_t>(total);
  auto ovalues = ws.make<T>(total);
  for (std::size_t i = 0; i < total; ++i) {
    oindices[i] = merged[i].index;
    ovalues[i] = merged[i].value;
  }

  GInterpFusedT<T> out;
  out.pred.codes = codes;
  out.pred.anchors = anchors;
  out.pred.outliers = {oindices, ovalues};
  out.histogram =
      huffman::merge_histograms(parts, nworkers * huffman::kHistogramBanks,
                                nbins);
  return out;
}

/// The fused pass with per-level emission (the SZI2 compress front end).
/// Identical tile walk and worker partition as compress_fused_impl; the
/// difference is step 3: instead of one banked histogram over the owned
/// codes, each owned row is re-bucketed into the per-level streams. Every
/// level-v position's slot is its closed-form rank, so workers write
/// disjoint stream ranges and the streams come out in ascending linear
/// order — byte-identical to a serial left-to-right split no matter how
/// tiles were partitioned. Per-level histograms are counted in the same
/// walk (plain per-worker partials, folded in fixed order).
template <typename T>
GInterpLevelsT<T> compress_fused_levels_impl(std::span<const T> data,
                                             const dev::Dim3& dims, double eb,
                                             const InterpConfig& cfg,
                                             int radius, dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  const std::size_t nbins = 2 * static_cast<std::size_t>(radius);

  const InterpDims id = interp_dims_of(dims);
  const auto nlv = static_cast<std::size_t>(id.nlevels);
  std::vector<std::span<quant::Code>> streams(nlv);
  for (std::size_t v = 0; v < nlv; ++v)
    streams[v] =
        ws.make<quant::Code>(ginterp_level_volume(dims, static_cast<int>(v) + 1));

  const auto level_qz = make_level_quantizers(eb, cfg, geo, radius);
  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  const std::size_t ntiles = grid.volume();
  const std::size_t nworkers =
      std::min(huffman::histogram_workers(data.size()),
               std::max<std::size_t>(ntiles, 1));
  const std::size_t tiles_per = dev::ceil_div(ntiles, nworkers);

  auto parts = ws.make<std::uint32_t>(nworkers * nlv * nbins);
  struct Outlier {
    std::uint64_t index;
    T value;
  };
  std::vector<std::vector<Outlier>> worker_outliers(nworkers);
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* hists = parts.data() + w * nlv * nbins;
        std::fill_n(hists, nlv * nbins, 0u);
        auto& outl = worker_outliers[w];
        const std::size_t tb = w * tiles_per;
        const std::size_t te = std::min(tb + tiles_per, ntiles);
        for (std::size_t ti = tb; ti < te; ++ti) {
          const dev::Coord3 c = dev::delinearize(grid, ti);
          const dev::BlockIdx blk{c.x, c.y, c.z, ti};
          std::size_t origin[3], owned[3];
          for (int i = 0; i < 3; ++i) {
            const std::size_t o =
                (i == 0 ? blk.x : i == 1 ? blk.y : blk.z) * dim_of(geo.tile, i);
            origin[i] = o;
            owned[i] = std::min(dim_of(geo.tile, i), dim_of(dims, i) - o);
          }
          for (std::size_t z = 0; z < owned[2]; ++z)
            for (std::size_t y = 0; y < owned[1]; ++y) {
              const std::size_t row = dev::linearize(
                  dims, origin[0], origin[1] + y, origin[2] + z);
              std::fill_n(codes.data() + row, owned[0], perfect);
            }
          run_one_tile<true, T>(blk, data, {}, codes, {}, dims, cfg, geo,
                                level_qz);
          for (std::size_t z = 0; z < owned[2]; ++z)
            for (std::size_t y = 0; y < owned[1]; ++y) {
              const std::size_t gy = origin[1] + y, gz = origin[2] + z;
              const std::size_t row =
                  dev::linearize(dims, origin[0], gy, gz);
              for (std::size_t v = 0; v < nlv; ++v) {
                const std::size_t s = std::size_t{1} << v;
                const RowPattern p =
                    row_pattern(gy, gz, id, static_cast<int>(v), s);
                if (p.step == 0) continue;
                const std::size_t x0 = origin[0];
                std::size_t x =
                    x0 <= p.start
                        ? p.start
                        : p.start +
                              dev::ceil_div(x0 - p.start, p.step) * p.step;
                if (x >= x0 + owned[0]) continue;
                std::size_t rank = level_rank(dims, id, static_cast<int>(v),
                                              x, gy, gz);
                std::uint32_t* h = hists + v * nbins;
                quant::Code* dst = streams[v].data();
                for (; x < x0 + owned[0]; x += p.step) {
                  const quant::Code code = codes[row + (x - x0)];
                  dst[rank++] = code;
                  ++h[code];
                }
              }
              for (std::size_t x = 0; x < owned[0]; ++x)
                if (codes[row + x] == quant::kOutlierMarker)
                  outl.push_back({row + x, data[row + x]});
            }
        }
      },
      1);

  std::size_t total = 0;
  for (const auto& v : worker_outliers) total += v.size();
  auto merged = ws.make<Outlier>(total);
  std::size_t pos = 0;
  for (const auto& v : worker_outliers) {
    std::copy(v.begin(), v.end(), merged.begin() + pos);
    pos += v.size();
  }
  std::sort(merged.begin(), merged.end(),
            [](const Outlier& a, const Outlier& b) { return a.index < b.index; });
  auto oindices = ws.make<std::uint64_t>(total);
  auto ovalues = ws.make<T>(total);
  for (std::size_t i = 0; i < total; ++i) {
    oindices[i] = merged[i].index;
    ovalues[i] = merged[i].value;
  }

  GInterpLevelsT<T> out;
  out.pred.codes = codes;
  out.pred.anchors = anchors;
  out.pred.outliers = {oindices, ovalues};
  out.levels.streams.assign(streams.begin(), streams.end());
  out.levels.histograms.resize(nlv);
  for (std::size_t v = 0; v < nlv; ++v) {
    auto& h = out.levels.histograms[v];
    h.assign(nbins, 0u);
    for (std::size_t w = 0; w < nworkers; ++w) {
      const std::uint32_t* part = parts.data() + (w * nlv + v) * nbins;
      for (std::size_t b = 0; b < nbins; ++b) h[b] += part[b];
    }
  }
  return out;
}

template <typename T>
std::vector<T> decompress_impl(std::span<const quant::Code> codes,
                               std::span<const T> anchors,
                               const quant::OutlierSetT<T>& outliers,
                               const dev::Dim3& dims, double eb,
                               const InterpConfig& cfg, int radius) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  const Geometry geo = geometry_for(dims);
  // Anchor count and outlier indices come from the archive; both index into
  // the work buffer, so they must be validated before any scatter.
  if (anchors.size() != anchor_dims(dims, geo.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  outliers.check_bounds(dims.volume(), "ginterp");
  std::vector<T> work(dims.volume(), T{0});
  scatter_anchors<T>(anchors, work, dims, geo.anchor);
  outliers.scatter(work);

  std::vector<T> out(dims.volume(), T{0});
  run_tiles<false, T>(work, out, {}, codes, dims, eb, cfg, radius);
  return out;
}

}  // namespace

// In-place incremental reconstruction. The constructor performs all archive
// validation and the scatter; run_slab then reconstructs one tile-grid
// z-slab directly in `out` (closed-region loads and owned write-backs hit
// the same buffer). The safety/bit-identity argument lives with the class
// declaration and in docs/PERF.md.
template <typename T>
GInterpReconstructorT<T>::GInterpReconstructorT(
    std::span<const quant::Code> codes, std::span<const T> anchors,
    const quant::OutlierViewT<T>& outliers, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, std::span<T> out, int max_level)
    : codes_(codes),
      out_(out),
      dims_(dims),
      grid_(dev::grid_for(dims, geometry_for(dims).tile)),
      geo_(geometry_for(dims)),
      cfg_(cfg),
      level_qz_(make_level_quantizers(eb, cfg, geo_, radius)),
      min_stride_(stride_of_level(
          std::clamp(max_level, 1, interp_levels(geo_) + 1))) {
  if (codes.size() != dims.volume() || out.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  // Anchor count and outlier indices come from the archive; both index into
  // the output buffer, so they must be validated before any scatter.
  if (anchors.size() != anchor_dims(dims, geo_.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  if (outliers.values.size() != outliers.indices.size())
    throw core::CorruptArchive("ginterp", 0, "outlier index/value mismatch");
  for (const auto idx : outliers.indices)
    if (idx >= dims.volume())
      throw core::CorruptArchive("ginterp", 0, "outlier index out of range");

  scatter_anchors<T>(anchors, out_, dims, geo_.anchor);
  for (std::size_t k = 0; k < outliers.indices.size(); ++k)
    out_[outliers.indices[k]] = outliers.values[k];

  // Snapshot every slab-boundary z-plane now, while the buffer holds exactly
  // the post-scatter state. A slab's +z border load consumes only anchors
  // and outlier originals — values reconstruction writes back unchanged —
  // so substituting this snapshot for the live buffer is bit-transparent,
  // and it severs the only cross-slab read: slabs become schedulable in any
  // order, including concurrently.
  if (grid_.z > 1) {
    const std::size_t plane = dims_.x * dims_.y;
    border_.resize((grid_.z - 1) * plane);
    dev::launch_linear(
        grid_.z - 1,
        [&](std::size_t bz) {
          const std::size_t z = (bz + 1) * geo_.tile.z;
          std::memcpy(border_.data() + bz * plane, out_.data() + z * plane,
                      plane * sizeof(T));
        },
        1);
  }
}

template <typename T>
std::size_t GInterpReconstructorT<T>::codes_needed(std::size_t bz) const {
  // A slab's closed regions reach one plane past the owned extent, and the
  // z-major linearization makes everything below that plane a contiguous
  // prefix of the code array.
  const std::size_t zmax = std::min<std::size_t>((bz + 1) * geo_.tile.z + 1,
                                                 dims_.z);
  return zmax * dims_.x * dims_.y;
}

template <typename T>
void GInterpReconstructorT<T>::run_slab(std::size_t bz) {
  // Four (bx, by)-parity waves: same-parity tiles are >= 2 blocks apart in
  // every in-slab direction, so their closed regions (owned + 1 border
  // plane in each positive direction) never overlap and the in-place loads
  // and write-backs of concurrently running tiles touch disjoint bytes.
  // The +z border plane (shared with slab bz+1) loads from the constructor's
  // snapshot, so concurrently running slabs never touch the same bytes.
  PlaneOverride<T> po;
  if (bz + 1 < grid_.z) {
    po.plane = border_.data() + bz * dims_.x * dims_.y;
    po.z = (bz + 1) * geo_.tile.z;
  }
  for (unsigned color = 0; color < 4; ++color) {
    const std::size_t px = color & 1u;
    const std::size_t py = color >> 1u;
    if (grid_.x <= px || grid_.y <= py) continue;
    const std::size_t nx = (grid_.x - px + 1) / 2;
    const std::size_t ny = (grid_.y - py + 1) / 2;
    dev::launch_linear(
        nx * ny,
        [&](std::size_t k) {
          const std::size_t bx = px + 2 * (k % nx);
          const std::size_t by = py + 2 * (k / nx);
          const dev::BlockIdx blk{bx, by, bz,
                                  (bz * grid_.y + by) * grid_.x + bx};
          run_one_tile<false, T>(blk, out_, out_, {}, codes_, dims_, cfg_,
                                 geo_, level_qz_, po, min_stride_);
        },
        1);
  }
}

template class GInterpReconstructorT<float>;
template class GInterpReconstructorT<double>;

// ---- Random-access (ROI) reconstruction ----------------------------------

GInterpRoiPlan ginterp_roi_plan(const dev::Dim3& dims, const dev::Dim3& lo,
                                const dev::Dim3& ext) {
  const auto bad = [](const char* what) {
    throw std::invalid_argument(std::string("ginterp_roi_plan: ") + what);
  };
  if (ext.x == 0 || ext.y == 0 || ext.z == 0) bad("empty ROI");
  if (lo.x > dims.x || ext.x > dims.x - lo.x || lo.y > dims.y ||
      ext.y > dims.y - lo.y || lo.z > dims.z || ext.z > dims.z - lo.z)
    bad("ROI exceeds field");

  const Geometry geo = geometry_for(dims);
  GInterpRoiPlan p;
  p.tile_lo = {lo.x / geo.tile.x, lo.y / geo.tile.y, lo.z / geo.tile.z};
  p.tile_hi = {dev::ceil_div(lo.x + ext.x, geo.tile.x),
               dev::ceil_div(lo.y + ext.y, geo.tile.y),
               dev::ceil_div(lo.z + ext.z, geo.tile.z)};
  p.box_lo = {p.tile_lo.x * geo.tile.x, p.tile_lo.y * geo.tile.y,
              p.tile_lo.z * geo.tile.z};
  // Closed box: one plane past the covered tiles' owned extent on every
  // positive side (the tiles' borrowed border), clipped to the field.
  p.box_dims = {
      std::min<std::size_t>(p.tile_hi.x * geo.tile.x + 1, dims.x) - p.box_lo.x,
      std::min<std::size_t>(p.tile_hi.y * geo.tile.y + 1, dims.y) - p.box_lo.y,
      std::min<std::size_t>(p.tile_hi.z * geo.tile.z + 1, dims.z) - p.box_lo.z};
  return p;
}

std::size_t ginterp_level_prefix(const dev::Dim3& dims, int level,
                                 std::size_t z) {
  const InterpDims id = interp_dims_of(dims);
  if (level < 1 || level > id.nlevels)
    throw std::invalid_argument("ginterp_level_prefix: level out of range");
  const std::size_t s = std::size_t{1} << (level - 1);
  return level_box(dims.x, dims.y, std::min<std::size_t>(z, dims.z), id, s);
}

void ginterp_level_box_runs(const dev::Dim3& dims, int level,
                            const dev::Dim3& lo, const dev::Dim3& ext,
                            const GInterpRunFn& fn) {
  const InterpDims id = interp_dims_of(dims);
  if (level < 1 || level > id.nlevels)
    throw std::invalid_argument("ginterp_level_box_runs: level out of range");
  const int v = level - 1;
  const std::size_t s = std::size_t{1} << v;
  const std::size_t xend = lo.x + ext.x;
  for (std::size_t z = lo.z; z < lo.z + ext.z; ++z)
    for (std::size_t y = lo.y; y < lo.y + ext.y; ++y) {
      const RowPattern p = row_pattern(y, z, id, v, s);
      if (p.step == 0) continue;
      const std::size_t x0 =
          lo.x <= p.start
              ? p.start
              : p.start + dev::ceil_div(lo.x - p.start, p.step) * p.step;
      if (x0 >= xend) continue;
      const std::size_t n = (xend - 1 - x0) / p.step + 1;
      fn(level_rank(dims, id, v, x0, y, z), n, x0, y, z, p.step);
    }
}

template <typename T>
GInterpRoiReconstructorT<T>::GInterpRoiReconstructorT(
    std::span<const quant::Code> codes, const GInterpRoiPlan& plan,
    const dev::Dim3& dims, double eb, const InterpConfig& cfg, int radius,
    std::span<T> out)
    : codes_(codes),
      out_(out),
      dims_(dims),
      plan_(plan),
      geo_(geometry_for(dims)),
      cfg_(cfg),
      level_qz_(make_level_quantizers(eb, cfg, geo_, radius)) {
  if (codes.size() != plan.box_dims.volume() ||
      out.size() != plan.box_dims.volume())
    throw std::invalid_argument("ginterp_roi: size/box mismatch");
  if (plan.tile_lo.x >= plan.tile_hi.x || plan.tile_lo.y >= plan.tile_hi.y ||
      plan.tile_lo.z >= plan.tile_hi.z)
    throw std::invalid_argument("ginterp_roi: empty tile cover");

  // Snapshot the box-interior slab-boundary planes, exactly as the full
  // reconstructor snapshots the field's: the caller just finished the
  // scatter, so these planes hold anchors + outlier originals — the only
  // loaded values a tile's +z border consumes — and reading them from the
  // snapshot makes covered slabs schedulable in any order. The last covered
  // slab's +z closed plane needs no snapshot: no covered tile owns (writes)
  // it, so the live buffer stays at the post-scatter values anyway.
  const std::size_t nslabs = plan_.tile_hi.z - plan_.tile_lo.z;
  if (nslabs > 1) {
    const std::size_t plane = plan_.box_dims.x * plan_.box_dims.y;
    border_.resize((nslabs - 1) * plane);
    dev::launch_linear(
        nslabs - 1,
        [&](std::size_t k) {
          const std::size_t z =
              (plan_.tile_lo.z + k + 1) * geo_.tile.z - plan_.box_lo.z;
          std::memcpy(border_.data() + k * plane, out_.data() + z * plane,
                      plane * sizeof(T));
        },
        1);
  }
}

template <typename T>
void GInterpRoiReconstructorT<T>::run_slab(std::size_t k) {
  const std::size_t bz = plan_.tile_lo.z + k;
  PlaneOverride<T> po;
  if (k + 1 < slab_count()) {
    po.plane = border_.data() + k * plan_.box_dims.x * plan_.box_dims.y;
    po.z = (bz + 1) * geo_.tile.z;
  }
  // The same four (bx, by)-parity waves as the full reconstructor, over the
  // covering block range only; parity is on the global block index, so
  // same-wave tiles stay >= 2 blocks apart.
  for (unsigned color = 0; color < 4; ++color) {
    const std::size_t px = color & 1u;
    const std::size_t py = color >> 1u;
    const std::size_t bx0 = plan_.tile_lo.x + ((px ^ (plan_.tile_lo.x & 1)) & 1);
    const std::size_t by0 = plan_.tile_lo.y + ((py ^ (plan_.tile_lo.y & 1)) & 1);
    if (bx0 >= plan_.tile_hi.x || by0 >= plan_.tile_hi.y) continue;
    const std::size_t nx = (plan_.tile_hi.x - bx0 + 1) / 2;
    const std::size_t ny = (plan_.tile_hi.y - by0 + 1) / 2;
    dev::launch_linear(
        nx * ny,
        [&](std::size_t t) {
          const std::size_t bx = bx0 + 2 * (t % nx);
          const std::size_t by = by0 + 2 * (t / nx);
          const dev::BlockIdx blk{bx, by, bz, t};
          run_one_tile_box<T>(blk, out_, codes_, dims_, plan_.box_lo,
                              plan_.box_dims, cfg_, geo_, level_qz_, po);
        },
        1);
  }
}

template class GInterpRoiReconstructorT<float>;
template class GInterpRoiReconstructorT<double>;

namespace {

/// In-place decompression over the whole volume: scatter into `out`, then
/// every slab. Slabs are independent (the reconstructor's border snapshot
/// severs the +z cross-slab read), so they fan out across the pool; the
/// per-slab parity-wave launches inside run_slab degrade to inline
/// execution when nested, keeping the two-level decomposition adaptive.
/// Same validation and same arithmetic as decompress_impl — outputs are
/// bit-identical (tests/test_decode_equiv.cc) at any worker count.
template <typename T>
void decompress_into_impl(std::span<const quant::Code> codes,
                          std::span<const T> anchors,
                          const quant::OutlierViewT<T>& outliers,
                          const dev::Dim3& dims, double eb,
                          const InterpConfig& cfg, int radius,
                          std::span<T> out, dev::Workspace& ws) {
  (void)ws;  // no staging buffer anymore; kept for call-site stability
  GInterpReconstructorT<T> recon(codes, anchors, outliers, dims, eb, cfg,
                                 radius, out);
  dev::launch_linear(
      recon.slab_count(), [&](std::size_t bz) { recon.run_slab(bz); }, 1);
}

template <typename T>
std::vector<T> subsample_impl(std::span<const T> full, const dev::Dim3& dims,
                              int max_level) {
  if (full.size() != dims.volume())
    throw std::invalid_argument("ginterp_subsample: size/dims mismatch");
  const InterpDims id = interp_dims_of(dims);
  const int L = std::clamp(max_level, 1, id.nlevels + 1);
  const std::size_t s = stride_of_level(L);
  const std::size_t sx = id.ix ? s : 1, sy = id.iy ? s : 1,
                    sz = id.iz ? s : 1;
  std::vector<T> out;
  out.reserve(ginterp_preview_dims(dims, L).volume());
  for (std::size_t z = 0; z < dims.z; z += sz)
    for (std::size_t y = 0; y < dims.y; y += sy)
      for (std::size_t x = 0; x < dims.x; x += sx)
        out.push_back(full[dev::linearize(dims, x, y, z)]);
  return out;
}

template <typename T>
std::vector<T> decompress_to_level_impl(std::span<const quant::Code> codes,
                                        std::span<const T> anchors,
                                        const quant::OutlierViewT<T>& outliers,
                                        const dev::Dim3& dims, double eb,
                                        const InterpConfig& cfg, int radius,
                                        int max_level, dev::Workspace& ws) {
  (void)ws;
  const InterpDims id = interp_dims_of(dims);
  const int L = std::clamp(max_level, 1, id.nlevels + 1);
  if (L == id.nlevels + 1) {
    // Anchors-only preview: the anchor grid IS the coarsest preview grid,
    // and anchors are stored lossless, so the preview is the anchor array.
    const Geometry geo = geometry_for(dims);
    if (anchors.size() != anchor_dims(dims, geo.anchor).volume())
      throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
    return std::vector<T>(anchors.begin(), anchors.end());
  }
  std::vector<T> full(dims.volume(), T{0});
  GInterpReconstructorT<T> recon(codes, anchors, outliers, dims, eb, cfg,
                                 radius, full, L);
  dev::launch_linear(
      recon.slab_count(), [&](std::size_t bz) { recon.run_slab(bz); }, 1);
  return subsample_impl<T>(full, dims, L);
}

}  // namespace

GInterpOutputT<float> ginterp_compress(std::span<const float> data,
                                       const dev::Dim3& dims, double eb,
                                       const InterpConfig& cfg, int radius) {
  return compress_impl<float>(data, dims, eb, cfg, radius);
}

GInterpOutputT<double> ginterp_compress(std::span<const double> data,
                                        const dev::Dim3& dims, double eb,
                                        const InterpConfig& cfg, int radius) {
  return compress_impl<double>(data, dims, eb, cfg, radius);
}

GInterpViewT<float> ginterp_compress(std::span<const float> data,
                                     const dev::Dim3& dims, double eb,
                                     const InterpConfig& cfg, int radius,
                                     dev::Workspace& ws) {
  return compress_ws_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpViewT<double> ginterp_compress(std::span<const double> data,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius,
                                      dev::Workspace& ws) {
  return compress_ws_impl<double>(data, dims, eb, cfg, radius, ws);
}

GInterpFusedT<float> ginterp_compress_fused(std::span<const float> data,
                                            const dev::Dim3& dims, double eb,
                                            const InterpConfig& cfg, int radius,
                                            dev::Workspace& ws) {
  return compress_fused_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpFusedT<double> ginterp_compress_fused(std::span<const double> data,
                                             const dev::Dim3& dims, double eb,
                                             const InterpConfig& cfg,
                                             int radius, dev::Workspace& ws) {
  return compress_fused_impl<double>(data, dims, eb, cfg, radius, ws);
}

void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const float> anchors,
                             const quant::OutlierViewT<float>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<float> out, dev::Workspace& ws) {
  decompress_into_impl<float>(codes, anchors, outliers, dims, eb, cfg, radius,
                              out, ws);
}

void ginterp_decompress_into(std::span<const quant::Code> codes,
                             std::span<const double> anchors,
                             const quant::OutlierViewT<double>& outliers,
                             const dev::Dim3& dims, double eb,
                             const InterpConfig& cfg, int radius,
                             std::span<double> out, dev::Workspace& ws) {
  decompress_into_impl<double>(codes, anchors, outliers, dims, eb, cfg, radius,
                               out, ws);
}

std::vector<float> ginterp_decompress(std::span<const quant::Code> codes,
                                      std::span<const float> anchors,
                                      const quant::OutlierSetT<float>& outliers,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius) {
  return decompress_impl<float>(codes, anchors, outliers, dims, eb, cfg,
                                radius);
}

std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius) {
  return decompress_impl<double>(codes, anchors, outliers, dims, eb, cfg,
                                 radius);
}

int ginterp_level_count(const dev::Dim3& dims) {
  return interp_dims_of(dims).nlevels;
}

std::size_t ginterp_level_volume(const dev::Dim3& dims, int level) {
  const InterpDims id = interp_dims_of(dims);
  if (level < 1 || level > id.nlevels) return 0;
  return level_box(dims.x, dims.y, dims.z, id, stride_of_level(level));
}

dev::Dim3 ginterp_preview_dims(const dev::Dim3& dims, int max_level) {
  const InterpDims id = interp_dims_of(dims);
  const int L = std::clamp(max_level, 1, id.nlevels + 1);
  const std::size_t s = stride_of_level(L);
  return {axis_count(dims.x, id.ix, s), axis_count(dims.y, id.iy, s),
          axis_count(dims.z, id.iz, s)};
}

GInterpLevelSplit ginterp_split_levels(std::span<const quant::Code> codes,
                                       const dev::Dim3& dims,
                                       std::size_t nbins, dev::Workspace& ws) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("ginterp_split_levels: size/dims mismatch");
  const InterpDims id = interp_dims_of(dims);
  const auto nlv = static_cast<std::size_t>(id.nlevels);
  GInterpLevelSplit out;
  out.streams.resize(nlv);
  out.histograms.assign(nlv, std::vector<std::uint32_t>(nbins, 0u));
  std::vector<std::span<quant::Code>> bufs(nlv);
  std::vector<std::size_t> fill(nlv, 0);
  for (std::size_t v = 0; v < nlv; ++v)
    bufs[v] = ws.make<quant::Code>(
        ginterp_level_volume(dims, static_cast<int>(v) + 1));
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y) {
      const std::size_t row = dev::linearize(dims, 0, y, z);
      for (std::size_t v = 0; v < nlv; ++v) {
        const RowPattern p =
            row_pattern(y, z, id, static_cast<int>(v), std::size_t{1} << v);
        if (p.step == 0) continue;
        auto& h = out.histograms[v];
        for (std::size_t x = p.start; x < dims.x; x += p.step) {
          const quant::Code code = codes[row + x];
          bufs[v][fill[v]++] = code;
          ++h[code];
        }
      }
    }
  for (std::size_t v = 0; v < nlv; ++v) out.streams[v] = bufs[v];
  return out;
}

LevelScatterCursor::LevelScatterCursor(const dev::Dim3& dims, int level)
    : dims_(dims), s_(stride_of_level(level)), v_(level - 1) {
  const InterpDims id = interp_dims_of(dims);
  nlevels_ = id.nlevels;
  iy_ = id.iy;
  iz_ = id.iz;
  enter_row();
}

/// Positions the cursor at the first level position of the current or a
/// later row; rows the level owns no position in are skipped. Past the last
/// row the watermark saturates at the full volume.
void LevelScatterCursor::enter_row() {
  const InterpDims id{true, iy_, iz_, nlevels_};
  for (; z_ < dims_.z; ++z_, y_ = 0) {
    for (; y_ < dims_.y; ++y_) {
      const RowPattern p = row_pattern(y_, z_, id, v_, s_);
      if (p.step != 0 && p.start < dims_.x) {
        x_ = p.start;
        step_ = p.step;
        watermark_ = dev::linearize(dims_, x_, y_, z_);
        return;
      }
    }
  }
  step_ = 0;
  watermark_ = dims_.volume();
}

std::size_t LevelScatterCursor::advance(std::span<const quant::Code> stream,
                                        std::size_t upto,
                                        std::span<quant::Code> codes) {
  upto = std::min(upto, stream.size());
  while (consumed_ < upto && step_ != 0) {
    const std::size_t base = dev::linearize(dims_, 0, y_, z_);
    while (x_ < dims_.x && consumed_ < upto) {
      codes[base + x_] = stream[consumed_++];
      x_ += step_;
    }
    if (x_ < dims_.x) {
      watermark_ = base + x_;
      return watermark_;
    }
    ++y_;
    enter_row();
  }
  return watermark_;
}

GInterpLevelsT<float> ginterp_compress_fused_levels(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws) {
  return compress_fused_levels_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpLevelsT<double> ginterp_compress_fused_levels(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius, dev::Workspace& ws) {
  return compress_fused_levels_impl<double>(data, dims, eb, cfg, radius, ws);
}

std::vector<float> ginterp_subsample(std::span<const float> full,
                                     const dev::Dim3& dims, int max_level) {
  return subsample_impl<float>(full, dims, max_level);
}

std::vector<double> ginterp_subsample(std::span<const double> full,
                                      const dev::Dim3& dims, int max_level) {
  return subsample_impl<double>(full, dims, max_level);
}

std::vector<float> ginterp_decompress_to_level(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierViewT<float>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius, int max_level,
    dev::Workspace& ws) {
  return decompress_to_level_impl<float>(codes, anchors, outliers, dims, eb,
                                         cfg, radius, max_level, ws);
}

std::vector<double> ginterp_decompress_to_level(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierViewT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius, int max_level,
    dev::Workspace& ws) {
  return decompress_to_level_impl<double>(codes, anchors, outliers, dims, eb,
                                          cfg, radius, max_level, ws);
}

}  // namespace szi::predictor
