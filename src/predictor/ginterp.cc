#include "predictor/ginterp.hh"

#include <array>
#include <cassert>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "predictor/anchor.hh"
#include "predictor/spline.hh"

namespace szi::predictor {

namespace {

/// Largest closed-tile volume across the per-rank geometries (33*9*9).
constexpr std::size_t kMaxTileVolume = 33 * 9 * 9;

template <typename T>
struct TileView {
  std::array<T, kMaxTileVolume> buf;
  std::array<std::size_t, 3> origin;  ///< global coords of local (0,0,0)
  std::array<std::size_t, 3> extent;  ///< closed local extent per dim
  std::array<std::size_t, 3> lstride; ///< local linear strides per dim
  std::array<std::size_t, 3> owned;   ///< owned extent (<= tile size)
};

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// One (stride, dimension) interpolation pass over a tile. Shared between
/// compression and decompression; `kCompress` selects which side of the
/// quantizer runs.
template <bool kCompress, typename T>
void tile_pass(TileView<T>& t, int d, std::size_t s,
               const std::array<bool, 3>& done, const quant::Quantizer& qz,
               CubicKind kind, const dev::Dim3& dims,
               std::span<quant::Code> codes, std::span<const quant::Code> codes_in) {
  // Iteration steps: the target dim walks odd multiples of s; dims already
  // interpolated at this level walk multiples of s; pending dims walk
  // multiples of 2s (§V-A's pass ordering).
  std::array<std::size_t, 3> start{0, 0, 0}, step{1, 1, 1};
  for (int i = 0; i < 3; ++i) step[i] = done[i] ? s : 2 * s;
  start[d] = s;
  step[d] = 2 * s;

  const std::size_t ls = t.lstride[d];         // local stride along d
  const std::size_t ext_d = t.extent[d];

  for (std::size_t z = start[2]; z < t.extent[2]; z += step[2]) {
    for (std::size_t y = start[1]; y < t.extent[1]; y += step[1]) {
      for (std::size_t x = start[0]; x < t.extent[0]; x += step[0]) {
        const std::array<std::size_t, 3> c{x, y, z};
        const std::size_t idx =
            x * t.lstride[0] + y * t.lstride[1] + z * t.lstride[2];
        const std::size_t cd = c[d];

        // Neighbor availability within the shared tile (and thus the array).
        const bool hb = cd >= s;
        const bool hc = cd + s < ext_d;
        const bool ha = cd >= 3 * s;
        const bool hd = cd + 3 * s < ext_d;
        const T a = ha ? t.buf[idx - 3 * s * ls] : T{0};
        const T b = hb ? t.buf[idx - s * ls] : T{0};
        const T cc = hc ? t.buf[idx + s * ls] : T{0};
        const T dd = hd ? t.buf[idx + 3 * s * ls] : T{0};
        const T pred = spline_predict(ha, a, hb, b, hc, cc, hd, dd, kind);

        const bool is_owned =
            x < t.owned[0] && y < t.owned[1] && z < t.owned[2];
        const std::size_t gidx = dev::linearize(
            dims, t.origin[0] + x, t.origin[1] + y, t.origin[2] + z);

        if constexpr (kCompress) {
          const auto r = qz.quantize(t.buf[idx], pred);
          t.buf[idx] = r.recon;
          if (is_owned) codes[gidx] = r.stored;
        } else {
          // buf[idx] holds the scattered original when the code is the
          // outlier marker; dequantize() returns it unchanged then.
          t.buf[idx] = qz.dequantize(codes_in[gidx], pred, t.buf[idx]);
        }
      }
    }
  }
}

template <bool kCompress, typename T>
void run_tiles(std::span<const T> in, std::span<T> out,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, const dev::Dim3& dims,
               double eb, const InterpConfig& cfg, int radius) {
  const Geometry geo = geometry_for(dims);

  // Per-level quantizers, indexed by log2(stride).
  std::vector<quant::Quantizer> level_qz;
  for (std::size_t s = 1; s <= geo.top_stride; s <<= 1)
    level_qz.emplace_back(level_eb(eb, cfg.alpha, level_of_stride(s)), radius);
  auto qz_for = [&](std::size_t s) -> const quant::Quantizer& {
    int l = 0;
    while ((std::size_t{1} << l) < s) ++l;
    return level_qz[static_cast<std::size_t>(l)];
  };

  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  dev::launch_blocks(grid, [&](const dev::BlockIdx& blk) {
    TileView<T> t;
    t.origin = {blk.x * geo.tile.x, blk.y * geo.tile.y, blk.z * geo.tile.z};
    for (int i = 0; i < 3; ++i) {
      const std::size_t nd = dim_of(dims, i);
      const std::size_t td = dim_of(geo.tile, i);
      t.owned[i] = std::min(td, nd - t.origin[i]);
      t.extent[i] = std::min(td + 1, nd - t.origin[i]);
    }
    t.lstride = {1, t.extent[0], t.extent[0] * t.extent[1]};

    // Load the closed region. For decompression `in` is a read-only work
    // buffer holding scattered anchors and outlier originals (writes go to
    // the separate `out`, so concurrent tiles never race on border planes).
    const std::span<const T> src = in;
    for (std::size_t z = 0; z < t.extent[2]; ++z)
      for (std::size_t y = 0; y < t.extent[1]; ++y) {
        const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
        const std::size_t grow = dev::linearize(dims, t.origin[0],
                                                t.origin[1] + y, t.origin[2] + z);
        for (std::size_t x = 0; x < t.extent[0]; ++x)
          t.buf[lrow + x] = src[grow + x];
      }

    // Level-by-level, dimension-by-dimension interpolation.
    for (std::size_t s = geo.top_stride; s >= 1; s >>= 1) {
      std::array<bool, 3> done{false, false, false};
      const quant::Quantizer& qz = qz_for(s);
      for (int k = 0; k < 3; ++k) {
        const int d = cfg.dim_order[k];
        if (dim_of(dims, d) == 1) continue;
        tile_pass<kCompress>(t, d, s, done, qz, cfg.cubic[static_cast<std::size_t>(d)],
                             dims, codes, codes_in);
        done[static_cast<std::size_t>(d)] = true;
      }
    }

    if constexpr (!kCompress) {
      // Write back the owned region.
      for (std::size_t z = 0; z < t.owned[2]; ++z)
        for (std::size_t y = 0; y < t.owned[1]; ++y) {
          const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
          const std::size_t grow = dev::linearize(
              dims, t.origin[0], t.origin[1] + y, t.origin[2] + z);
          for (std::size_t x = 0; x < t.owned[0]; ++x)
            out[grow + x] = t.buf[lrow + x];
        }
    }
  });
}

template <typename T>
void check_compress_args(std::span<const T> data, const dev::Dim3& dims,
                         double eb) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("ginterp_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("ginterp_compress: eb must be > 0");
}

template <typename T>
GInterpOutputT<T> compress_impl(std::span<const T> data, const dev::Dim3& dims,
                                double eb, const InterpConfig& cfg,
                                int radius) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  GInterpOutputT<T> out;
  out.anchors = gather_anchors(data, dims, geo.anchor);
  // Anchors and any never-targeted point read as "perfectly predicted".
  out.codes.assign(data.size(),
                   static_cast<quant::Code>(radius));

  run_tiles<true, T>(data, {}, out.codes, {}, dims, eb, cfg, radius);
  out.outliers = quant::OutlierSetT<T>::gather(out.codes, data);
  return out;
}

template <typename T>
GInterpViewT<T> compress_ws_impl(std::span<const T> data,
                                 const dev::Dim3& dims, double eb,
                                 const InterpConfig& cfg, int radius,
                                 dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  // Arena blocks carry stale contents, so the default code must be written
  // explicitly everywhere (anchors and never-targeted points included).
  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  dev::launch_linear(
      codes.size(), [&](std::size_t i) { codes[i] = perfect; }, 1 << 14);

  run_tiles<true, T>(data, {}, codes, {}, dims, eb, cfg, radius);
  GInterpViewT<T> out;
  out.codes = codes;
  out.anchors = anchors;
  out.outliers = quant::gather_outliers<T>(codes, data, ws);
  return out;
}

template <typename T>
std::vector<T> decompress_impl(std::span<const quant::Code> codes,
                               std::span<const T> anchors,
                               const quant::OutlierSetT<T>& outliers,
                               const dev::Dim3& dims, double eb,
                               const InterpConfig& cfg, int radius) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  const Geometry geo = geometry_for(dims);
  // Anchor count and outlier indices come from the archive; both index into
  // the work buffer, so they must be validated before any scatter.
  if (anchors.size() != anchor_dims(dims, geo.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  outliers.check_bounds(dims.volume(), "ginterp");
  std::vector<T> work(dims.volume(), T{0});
  scatter_anchors<T>(anchors, work, dims, geo.anchor);
  outliers.scatter(work);

  std::vector<T> out(dims.volume(), T{0});
  run_tiles<false, T>(work, out, {}, codes, dims, eb, cfg, radius);
  return out;
}

}  // namespace

GInterpOutputT<float> ginterp_compress(std::span<const float> data,
                                       const dev::Dim3& dims, double eb,
                                       const InterpConfig& cfg, int radius) {
  return compress_impl<float>(data, dims, eb, cfg, radius);
}

GInterpOutputT<double> ginterp_compress(std::span<const double> data,
                                        const dev::Dim3& dims, double eb,
                                        const InterpConfig& cfg, int radius) {
  return compress_impl<double>(data, dims, eb, cfg, radius);
}

GInterpViewT<float> ginterp_compress(std::span<const float> data,
                                     const dev::Dim3& dims, double eb,
                                     const InterpConfig& cfg, int radius,
                                     dev::Workspace& ws) {
  return compress_ws_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpViewT<double> ginterp_compress(std::span<const double> data,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius,
                                      dev::Workspace& ws) {
  return compress_ws_impl<double>(data, dims, eb, cfg, radius, ws);
}

std::vector<float> ginterp_decompress(std::span<const quant::Code> codes,
                                      std::span<const float> anchors,
                                      const quant::OutlierSetT<float>& outliers,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius) {
  return decompress_impl<float>(codes, anchors, outliers, dims, eb, cfg,
                                radius);
}

std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius) {
  return decompress_impl<double>(codes, anchors, outliers, dims, eb, cfg,
                                 radius);
}

}  // namespace szi::predictor
