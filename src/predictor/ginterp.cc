#include "predictor/ginterp.hh"

#include <array>
#include <cassert>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "predictor/anchor.hh"
#include "predictor/spline.hh"

namespace szi::predictor {

namespace {

/// Largest closed-tile volume across the per-rank geometries (33*9*9).
constexpr std::size_t kMaxTileVolume = 33 * 9 * 9;

template <typename T>
struct TileView {
  std::array<T, kMaxTileVolume> buf;
  std::array<std::size_t, 3> origin;  ///< global coords of local (0,0,0)
  std::array<std::size_t, 3> extent;  ///< closed local extent per dim
  std::array<std::size_t, 3> lstride; ///< local linear strides per dim
  std::array<std::size_t, 3> owned;   ///< owned extent (<= tile size)
};

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// One (stride, dimension) interpolation pass over a tile. Shared between
/// compression and decompression; `kCompress` selects which side of the
/// quantizer runs.
///
/// Interior/rim optimization. The naive walk (retained verbatim in
/// predictor/reference.cc) re-derived four neighbor-availability flags, a
/// three-multiply dev::linearize, and an ownership test for *every* target
/// point. But within one pass every quantity that used to be guarded depends
/// only on the coordinate `cd` along the target dimension d:
///   - availability (ha/hb/hc/hd) is a function of cd alone, so the spline
///     dispatch hoists to one selection per cd value — the interior cd range
///     (all four neighbors present) runs the pure cubic kernel with zero
///     per-point branches, and the rim cd values (cd = s, and the trailing
///     one-sided cases) each get their own specialized branchless walk;
///   - ownership along d is `cd < owned[d]`; ownership along the plane dims
///     splits the inner loop into an emitting prefix and a (<= 1 iteration)
///     non-emitting border tail instead of a per-point test;
///   - local and global indices advance by per-iteration constant strides,
///     replacing the per-point multiplies.
/// Iteration order across points of one pass is free: a pass writes only
/// odd multiples of s along d and reads only even multiples, so no written
/// value is ever an input to the same pass. Per-point arithmetic (spline
/// formula, quantizer) is untouched — codes and recon are byte-identical to
/// the reference by construction, which tests/test_predictor_equiv.cc
/// asserts over odd/even/tiny grids.
template <bool kCompress, typename T>
void tile_pass(TileView<T>& t, int d, std::size_t s,
               const std::array<bool, 3>& done, const quant::Quantizer& qz,
               CubicKind kind, const dev::Dim3& dims,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, std::size_t gorigin) {
  // Plane dims: u is the faster-varying one (x unless d == 0), v the other.
  const auto u = static_cast<std::size_t>(d == 0 ? 1 : 0);
  const auto v = static_cast<std::size_t>(d == 2 ? 1 : 2);
  const auto dd = static_cast<std::size_t>(d);

  // The target dim walks odd multiples of s; dims already interpolated at
  // this level walk multiples of s; pending dims walk multiples of 2s
  // (§V-A's pass ordering).
  const std::size_t step_u = done[u] ? s : 2 * s;
  const std::size_t step_v = done[v] ? s : 2 * s;
  const std::size_t ext_d = t.extent[dd];

  const std::size_t ls_u = t.lstride[u];
  const std::size_t ls_v = t.lstride[v];
  const std::size_t ls_d = t.lstride[dd];
  const std::size_t gs_all[3] = {1, dims.x, dims.x * dims.y};
  const std::size_t gs_u = gs_all[u], gs_v = gs_all[v], gs_d = gs_all[dd];

  // Neighbor offsets along d, as signed offsets from the target pointer.
  const auto o1 = static_cast<std::ptrdiff_t>(s * ls_d);
  const std::ptrdiff_t o3 = 3 * o1;

  // Inner-loop trip counts: total, and the emitting prefix (pu < owned[u]).
  const std::size_t n_u = dev::ceil_div(t.extent[u], step_u);
  const std::size_t n_u_owned = std::min(n_u, dev::ceil_div(t.owned[u], step_u));

  for (std::size_t cd = s; cd < ext_d; cd += 2 * s) {
    // Neighbor availability for this whole plane (hb := cd >= s holds by
    // construction of the walk).
    const bool ha = cd >= 3 * s;
    const bool hc = cd + s < ext_d;
    const bool hd = cd + 3 * s < ext_d;
    const bool owned_d = cd < t.owned[dd];

    // One full plane with a fixed predictor functor; `pred(p)` reads only
    // the neighbors its availability case guarantees exist.
    auto walk = [&](auto pred) {
      for (std::size_t pv = 0; pv < t.extent[v]; pv += step_v) {
        T* p = t.buf.data() + cd * ls_d + pv * ls_v;
        std::size_t gidx = gorigin + cd * gs_d + pv * gs_v;
        const std::size_t dp = step_u * ls_u;
        const std::size_t dg = step_u * gs_u;
        if constexpr (kCompress) {
          const std::size_t n_emit =
              owned_d && pv < t.owned[v] ? n_u_owned : 0;
          std::size_t k = 0;
          for (; k < n_emit; ++k, p += dp, gidx += dg) {
            const auto r = qz.quantize(*p, pred(p));
            *p = r.recon;
            codes[gidx] = r.stored;
          }
          // Border tail: recon feeds later passes, but no code is owned.
          for (; k < n_u; ++k, p += dp) *p = qz.quantize(*p, pred(p)).recon;
        } else {
          // buf[idx] holds the scattered original when the code is the
          // outlier marker; dequantize() returns it unchanged then.
          for (std::size_t k = 0; k < n_u; ++k, p += dp, gidx += dg)
            *p = qz.dequantize(codes_in[gidx], pred(p), *p);
        }
      }
    };

    if (hc) {
      if (ha && hd) {
        // Interior: the branchless cubic walk (the overwhelming majority of
        // points at fine strides).
        if (kind == CubicKind::NotAKnot)
          walk([=](const T* p) { return cubic_nak(p[-o3], p[-o1], p[o1], p[o3]); });
        else
          walk([=](const T* p) {
            return cubic_natural(p[-o3], p[-o1], p[o1], p[o3]);
          });
      } else if (ha) {
        walk([=](const T* p) { return quad_left(p[-o3], p[-o1], p[o1]); });
      } else if (hd) {
        walk([=](const T* p) { return quad_right(p[-o1], p[o1], p[o3]); });
      } else {
        walk([=](const T* p) { return linear(p[-o1], p[o1]); });
      }
    } else {
      walk([=](const T* p) { return p[-o1]; });  // one-sided nearest copy
    }
  }
}

template <bool kCompress, typename T>
void run_tiles(std::span<const T> in, std::span<T> out,
               std::span<quant::Code> codes,
               std::span<const quant::Code> codes_in, const dev::Dim3& dims,
               double eb, const InterpConfig& cfg, int radius) {
  const Geometry geo = geometry_for(dims);

  // Per-level quantizers, indexed by log2(stride).
  std::vector<quant::Quantizer> level_qz;
  for (std::size_t s = 1; s <= geo.top_stride; s <<= 1)
    level_qz.emplace_back(level_eb(eb, cfg.alpha, level_of_stride(s)), radius);
  auto qz_for = [&](std::size_t s) -> const quant::Quantizer& {
    int l = 0;
    while ((std::size_t{1} << l) < s) ++l;
    return level_qz[static_cast<std::size_t>(l)];
  };

  const dev::Dim3 grid = dev::grid_for(dims, geo.tile);
  dev::launch_blocks(grid, [&](const dev::BlockIdx& blk) {
    TileView<T> t;
    t.origin = {blk.x * geo.tile.x, blk.y * geo.tile.y, blk.z * geo.tile.z};
    for (int i = 0; i < 3; ++i) {
      const std::size_t nd = dim_of(dims, i);
      const std::size_t td = dim_of(geo.tile, i);
      t.owned[i] = std::min(td, nd - t.origin[i]);
      t.extent[i] = std::min(td + 1, nd - t.origin[i]);
    }
    t.lstride = {1, t.extent[0], t.extent[0] * t.extent[1]};

    // Load the closed region. For decompression `in` is a read-only work
    // buffer holding scattered anchors and outlier originals (writes go to
    // the separate `out`, so concurrent tiles never race on border planes).
    const std::span<const T> src = in;
    for (std::size_t z = 0; z < t.extent[2]; ++z)
      for (std::size_t y = 0; y < t.extent[1]; ++y) {
        const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
        const std::size_t grow = dev::linearize(dims, t.origin[0],
                                                t.origin[1] + y, t.origin[2] + z);
        for (std::size_t x = 0; x < t.extent[0]; ++x)
          t.buf[lrow + x] = src[grow + x];
      }

    // Level-by-level, dimension-by-dimension interpolation.
    const std::size_t gorigin =
        dev::linearize(dims, t.origin[0], t.origin[1], t.origin[2]);
    for (std::size_t s = geo.top_stride; s >= 1; s >>= 1) {
      std::array<bool, 3> done{false, false, false};
      const quant::Quantizer& qz = qz_for(s);
      for (int k = 0; k < 3; ++k) {
        const int d = cfg.dim_order[k];
        if (dim_of(dims, d) == 1) continue;
        tile_pass<kCompress>(t, d, s, done, qz, cfg.cubic[static_cast<std::size_t>(d)],
                             dims, codes, codes_in, gorigin);
        done[static_cast<std::size_t>(d)] = true;
      }
    }

    if constexpr (!kCompress) {
      // Write back the owned region.
      for (std::size_t z = 0; z < t.owned[2]; ++z)
        for (std::size_t y = 0; y < t.owned[1]; ++y) {
          const std::size_t lrow = y * t.lstride[1] + z * t.lstride[2];
          const std::size_t grow = dev::linearize(
              dims, t.origin[0], t.origin[1] + y, t.origin[2] + z);
          for (std::size_t x = 0; x < t.owned[0]; ++x)
            out[grow + x] = t.buf[lrow + x];
        }
    }
  });
}

template <typename T>
void check_compress_args(std::span<const T> data, const dev::Dim3& dims,
                         double eb) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("ginterp_compress: size/dims mismatch");
  if (eb <= 0) throw std::invalid_argument("ginterp_compress: eb must be > 0");
}

template <typename T>
GInterpOutputT<T> compress_impl(std::span<const T> data, const dev::Dim3& dims,
                                double eb, const InterpConfig& cfg,
                                int radius) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  GInterpOutputT<T> out;
  out.anchors = gather_anchors(data, dims, geo.anchor);
  // Anchors and any never-targeted point read as "perfectly predicted".
  out.codes.assign(data.size(),
                   static_cast<quant::Code>(radius));

  run_tiles<true, T>(data, {}, out.codes, {}, dims, eb, cfg, radius);
  out.outliers = quant::OutlierSetT<T>::gather(out.codes, data);
  return out;
}

template <typename T>
GInterpViewT<T> compress_ws_impl(std::span<const T> data,
                                 const dev::Dim3& dims, double eb,
                                 const InterpConfig& cfg, int radius,
                                 dev::Workspace& ws) {
  check_compress_args(data, dims, eb);

  const Geometry geo = geometry_for(dims);
  auto anchors = ws.make<T>(anchor_dims(dims, geo.anchor).volume());
  gather_anchors_into<T>(data, dims, geo.anchor, anchors);

  // Arena blocks carry stale contents, so the default code must be written
  // explicitly everywhere (anchors and never-targeted points included).
  auto codes = ws.make<quant::Code>(data.size());
  const auto perfect = static_cast<quant::Code>(radius);
  dev::launch_linear(
      codes.size(), [&](std::size_t i) { codes[i] = perfect; }, 1 << 14);

  run_tiles<true, T>(data, {}, codes, {}, dims, eb, cfg, radius);
  GInterpViewT<T> out;
  out.codes = codes;
  out.anchors = anchors;
  out.outliers = quant::gather_outliers<T>(codes, data, ws);
  return out;
}

template <typename T>
std::vector<T> decompress_impl(std::span<const quant::Code> codes,
                               std::span<const T> anchors,
                               const quant::OutlierSetT<T>& outliers,
                               const dev::Dim3& dims, double eb,
                               const InterpConfig& cfg, int radius) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("ginterp_decompress: size/dims mismatch");

  const Geometry geo = geometry_for(dims);
  // Anchor count and outlier indices come from the archive; both index into
  // the work buffer, so they must be validated before any scatter.
  if (anchors.size() != anchor_dims(dims, geo.anchor).volume())
    throw core::CorruptArchive("ginterp", 0, "anchor count mismatch");
  outliers.check_bounds(dims.volume(), "ginterp");
  std::vector<T> work(dims.volume(), T{0});
  scatter_anchors<T>(anchors, work, dims, geo.anchor);
  outliers.scatter(work);

  std::vector<T> out(dims.volume(), T{0});
  run_tiles<false, T>(work, out, {}, codes, dims, eb, cfg, radius);
  return out;
}

}  // namespace

GInterpOutputT<float> ginterp_compress(std::span<const float> data,
                                       const dev::Dim3& dims, double eb,
                                       const InterpConfig& cfg, int radius) {
  return compress_impl<float>(data, dims, eb, cfg, radius);
}

GInterpOutputT<double> ginterp_compress(std::span<const double> data,
                                        const dev::Dim3& dims, double eb,
                                        const InterpConfig& cfg, int radius) {
  return compress_impl<double>(data, dims, eb, cfg, radius);
}

GInterpViewT<float> ginterp_compress(std::span<const float> data,
                                     const dev::Dim3& dims, double eb,
                                     const InterpConfig& cfg, int radius,
                                     dev::Workspace& ws) {
  return compress_ws_impl<float>(data, dims, eb, cfg, radius, ws);
}

GInterpViewT<double> ginterp_compress(std::span<const double> data,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius,
                                      dev::Workspace& ws) {
  return compress_ws_impl<double>(data, dims, eb, cfg, radius, ws);
}

std::vector<float> ginterp_decompress(std::span<const quant::Code> codes,
                                      std::span<const float> anchors,
                                      const quant::OutlierSetT<float>& outliers,
                                      const dev::Dim3& dims, double eb,
                                      const InterpConfig& cfg, int radius) {
  return decompress_impl<float>(codes, anchors, outliers, dims, eb, cfg,
                                radius);
}

std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius) {
  return decompress_impl<double>(codes, anchors, outliers, dims, eb, cfg,
                                 radius);
}

}  // namespace szi::predictor
