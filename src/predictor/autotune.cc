#include "predictor/autotune.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "device/reduce.hh"
#include "predictor/spline.hh"

namespace szi::predictor {

namespace {

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// Sample coordinates along an axis of length n: `count` interior positions,
/// clamped so the stride-1 cubic stencil (±3) stays in bounds.
std::vector<std::size_t> sample_coords(std::size_t n, std::size_t count) {
  std::vector<std::size_t> coords;
  if (n < 7) {
    coords.push_back(n / 2);
    return coords;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t c = (i + 1) * n / (count + 1);
    c = std::clamp<std::size_t>(c, 3, n - 4);
    if (coords.empty() || coords.back() != c) coords.push_back(c);
  }
  return coords;
}

template <typename T>
ProfileResult autotune_impl(std::span<const T> data, const dev::Dim3& dims,
                            double eb, std::size_t samples_per_dim,
                            dev::Workspace* ws) {
  ProfileResult r;

  // Step 1: value range -> relative error bound -> α via Eq. (1).
  const auto mm = ws ? dev::minmax(data, *ws) : dev::minmax(data);
  r.value_range = static_cast<double>(mm.max) - static_cast<double>(mm.min);
  r.epsilon = r.value_range > 0 ? eb / r.value_range : 1.0;
  r.config.alpha = alpha_of_epsilon(r.epsilon);

  // Step 2: sampled cubic-spline prediction errors per (spline, dimension).
  // Two instances of cubic interpolation per dimension per sample, as §V-C.1
  // describes (both cubic kinds on the same stencil).
  const auto xs = sample_coords(dims.x, samples_per_dim);
  const auto ys = sample_coords(dims.y, samples_per_dim);
  const auto zs = sample_coords(dims.z, samples_per_dim);
  const std::array<std::size_t, 3> strides{1, dims.x, dims.x * dims.y};

  for (const std::size_t z : zs)
    for (const std::size_t y : ys)
      for (const std::size_t x : xs) {
        const std::size_t idx = dev::linearize(dims, x, y, z);
        const std::array<std::size_t, 3> c{x, y, z};
        for (int d = 0; d < 3; ++d) {
          const std::size_t nd = dim_of(dims, d);
          if (c[d] < 3 || c[d] + 3 >= nd) continue;
          const std::size_t s = strides[static_cast<std::size_t>(d)];
          const T a = data[idx - 3 * s];
          const T b = data[idx - s];
          const T cc = data[idx + s];
          const T dd = data[idx + 3 * s];
          const T v = data[idx];
          r.err_nak[static_cast<std::size_t>(d)] +=
              std::abs(static_cast<double>(v) - cubic_nak(a, b, cc, dd));
          r.err_natural[static_cast<std::size_t>(d)] +=
              std::abs(static_cast<double>(v) - cubic_natural(a, b, cc, dd));
        }
      }

  // Per-dimension spline choice: the cubic with the lower profiled error.
  std::array<double, 3> best{};
  for (int d = 0; d < 3; ++d) {
    const auto du = static_cast<std::size_t>(d);
    r.config.cubic[du] = r.err_nak[du] <= r.err_natural[du]
                             ? CubicKind::NotAKnot
                             : CubicKind::Natural;
    best[du] = std::min(r.err_nak[du], r.err_natural[du]);
    // Absent dimensions are "perfectly smooth": order them last.
    if (dim_of(dims, d) == 1) best[du] = -1.0;
  }

  // Dimension order: least smooth (largest error) first, so the smoothest
  // dimension receives the most interpolations (§V-C.2).
  std::array<std::uint8_t, 3> order{0, 1, 2};
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint8_t l, std::uint8_t rgt) {
                     return best[l] > best[rgt];
                   });
  r.config.dim_order = order;
  return r;
}

}  // namespace

ProfileResult autotune(std::span<const float> data, const dev::Dim3& dims,
                       double eb, std::size_t samples_per_dim) {
  return autotune_impl<float>(data, dims, eb, samples_per_dim, nullptr);
}

ProfileResult autotune(std::span<const double> data, const dev::Dim3& dims,
                       double eb, std::size_t samples_per_dim) {
  return autotune_impl<double>(data, dims, eb, samples_per_dim, nullptr);
}

ProfileResult autotune(std::span<const float> data, const dev::Dim3& dims,
                       double eb, dev::Workspace& ws,
                       std::size_t samples_per_dim) {
  return autotune_impl<float>(data, dims, eb, samples_per_dim, &ws);
}

ProfileResult autotune(std::span<const double> data, const dev::Dim3& dims,
                       double eb, dev::Workspace& ws,
                       std::size_t samples_per_dim) {
  return autotune_impl<double>(data, dims, eb, samples_per_dim, &ws);
}

}  // namespace szi::predictor
