// Retained *reference* implementations of the G-Interp tile kernel and the
// Lorenzo predictor — verbatim copies of the pre-optimization inner loops
// (per-point neighbor availability checks, per-point dev::linearize, no
// interior/rim split). They exist solely so tests/test_predictor_equiv.cc
// can assert that the optimized kernels in ginterp.cc / lorenzo.cc produce
// byte-identical quant codes, anchors, outliers, and reconstructions: the
// optimization contract is "same arithmetic per point, different control
// flow", and these keep that contract executable.
//
// Do not optimize this file. It is deliberately the slow, obviously-correct
// formulation.
#pragma once

#include <span>
#include <vector>

#include "predictor/ginterp.hh"
#include "predictor/lorenzo.hh"

namespace szi::predictor::reference {

[[nodiscard]] GInterpOutputT<float> ginterp_compress(
    std::span<const float> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] GInterpOutputT<double> ginterp_compress(
    std::span<const double> data, const dev::Dim3& dims, double eb,
    const InterpConfig& cfg, int radius = quant::kDefaultRadius);

[[nodiscard]] std::vector<float> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierSetT<float>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);
[[nodiscard]] std::vector<double> ginterp_decompress(
    std::span<const quant::Code> codes, std::span<const double> anchors,
    const quant::OutlierSetT<double>& outliers, const dev::Dim3& dims,
    double eb, const InterpConfig& cfg, int radius = quant::kDefaultRadius);

[[nodiscard]] LorenzoOutput lorenzo_compress(std::span<const float> data,
                                             const dev::Dim3& dims, double eb,
                                             int radius = quant::kDefaultRadius);

}  // namespace szi::predictor::reference
