// Geometry and tuning configuration of the G-Interp predictor (§V).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "device/dims.hh"
#include "predictor/spline.hh"

namespace szi::predictor {

/// Per-rank tile/anchor geometry of §V-A: 8^3 basic blocks fused 4-wide
/// along x into a 32x8x8 chunk for 3D, 16^2 chunks for 2D, 512 for 1D.
struct Geometry {
  dev::Dim3 tile;        ///< owned extent of one thread-block tile
  dev::Dim3 anchor;      ///< anchor stride per dimension
  std::size_t top_stride;  ///< first (coarsest) interpolation stride
};

[[nodiscard]] constexpr Geometry geometry_for(const dev::Dim3& dims) {
  switch (dims.rank()) {
    case 3:
      return {{32, 8, 8}, {8, 8, 8}, 4};
    case 2:
      return {{16, 16, 1}, {16, 16, 1}, 8};
    default:
      return {{512, 1, 1}, {512, 1, 1}, 256};
  }
}

/// Auto-tuned knobs (produced by the profiling kernel, §V-C; stored in the
/// archive header so decompression replays identically).
struct InterpConfig {
  double alpha = 1.5;                      ///< level-wise eb reduction factor
  std::array<CubicKind, 3> cubic = {CubicKind::NotAKnot, CubicKind::NotAKnot,
                                    CubicKind::NotAKnot};  ///< per dim x,y,z
  std::array<std::uint8_t, 3> dim_order = {2, 1, 0};  ///< pass order, first =
                                                      ///< least smooth dim
};

/// Interpolation level of a stride: ℓ = log2(stride) + 1, so stride 1 is
/// level 1 and gets the full user error bound.
[[nodiscard]] inline int level_of_stride(std::size_t stride) {
  int level = 1;
  while (stride > 1) {
    stride >>= 1;
    ++level;
  }
  return level;
}

/// Inverse of level_of_stride: the stride a (1-based) level interpolates at.
[[nodiscard]] inline std::size_t stride_of_level(int level) {
  return std::size_t{1} << (level - 1);
}

/// Number of interpolation levels a geometry walks (strides top_stride down
/// to 1) — the single source of truth for per-level segment counts,
/// quantizer tables, and preview grids.
[[nodiscard]] inline int interp_levels(const Geometry& geo) {
  return level_of_stride(geo.top_stride);
}

/// Level-wise error bound e_ℓ = e / α^(ℓ-1)  (§V-B.2).
[[nodiscard]] inline double level_eb(double eb, double alpha, int level) {
  return eb / std::pow(alpha, level - 1);
}

/// The paper's Eq. (1): piecewise-linear α as a function of the
/// value-range-relative error bound ε.
[[nodiscard]] inline double alpha_of_epsilon(double eps) {
  if (eps >= 1e-1) return 2.0;
  if (eps >= 1e-2) return 1.75 + 0.25 * (eps - 1e-2) / (1e-1 - 1e-2);
  if (eps >= 1e-3) return 1.5 + 0.25 * (eps - 1e-3) / (1e-2 - 1e-3);
  if (eps >= 1e-4) return 1.25 + 0.25 * (eps - 1e-4) / (1e-3 - 1e-4);
  if (eps >= 1e-5) return 1.0 + 0.25 * (eps - 1e-5) / (1e-4 - 1e-5);
  return 1.0;
}

}  // namespace szi::predictor
