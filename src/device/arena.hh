// Pooled "device memory" for pipeline workspaces.
//
// Every compression stage used to allocate its intermediates (quant codes,
// histograms, Huffman bitstreams, LZSS match tables) as fresh std::vectors —
// for multi-megabyte buffers glibc routes these through mmap, so every call
// paid page faults plus kernel zeroing, the per-invocation overhead that
// dominates GPU compressors at scale (cuSZ+, Tian et al. 2021). The Arena is
// the CPU analogue of a CUDA stream-ordered memory pool (cudaMemPool): a
// size-bucketed, thread-safe free list of raw blocks that keeps pages warm
// across invocations.
//
// Layering:
//   Arena      — global, thread-safe, power-of-two buckets, explicit trim().
//   Workspace  — per-stream scratch handle; hands out typed spans and
//                returns every block to its arena on reset()/destruction.
//                NOT thread-safe: one Workspace per stream, by design.
//   PooledBuffer — RAII block for transient per-worker scratch inside a
//                kernel body (goes straight to the thread-safe Arena).
//
// Lifetime rules (see docs/ARCHITECTURE.md): spans from Workspace::make()
// are valid until the next reset(); nothing in an arena block is zeroed —
// consumers must fully overwrite what they read, which the determinism tests
// enforce by comparing pooled and non-pooled archives byte for byte.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

namespace szi::dev {

class Arena {
 public:
  /// Global pool shared by all streams and pipelines.
  static Arena& instance();

  /// Number of partitioned shard arenas available via shard().
  static constexpr std::size_t kShards = 16;

  /// Partitioned per-stream pools: shard(i) always returns the same Arena
  /// for the same i, so a stream scheduler that pins stream i to shard
  /// i % kShards keeps that stream's pages warm across batches while
  /// eliminating free-list lock contention between concurrent streams.
  /// Shards are constructed lazily and live for the process.
  static Arena& shard(std::size_t i);

  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  struct Stats {
    std::size_t hits = 0;        ///< acquisitions served from the pool
    std::size_t misses = 0;      ///< acquisitions that hit the OS allocator
    std::size_t pooled_blocks = 0;
    std::size_t pooled_bytes = 0;
    std::size_t outstanding = 0; ///< blocks currently acquired
    std::size_t outstanding_bytes = 0;  ///< bytes currently acquired
    /// Bytes currently held from the OS: outstanding + pooled. This is the
    /// arena's real footprint — release() moves bytes from outstanding to
    /// pooled without returning them, only trim() shrinks it.
    std::size_t held_bytes = 0;
    /// Peak of held_bytes since construction (or the last
    /// reset_high_water()). The admission controller in szi::serve budgets
    /// against this — it is the honest "how much workspace did the fleet
    /// ever pin" number the bench ledgers report.
    std::size_t high_water_bytes = 0;
  };

  /// Returns a block of at least `bytes` (rounded up to the bucket size,
  /// reported through `capacity`). Contents are unspecified.
  [[nodiscard]] std::byte* acquire(std::size_t bytes, std::size_t& capacity);

  /// Returns a block obtained from acquire(); `capacity` must be the value
  /// acquire() reported.
  void release(std::byte* p, std::size_t capacity) noexcept;

  /// Frees every idle block back to the OS (outstanding blocks unaffected).
  void trim() noexcept;

  /// Restarts high-water tracking from the current held_bytes; phase-scoped
  /// peak measurements (the serve bench's per-config ledger rows) bracket a
  /// phase with reset + read.
  void reset_high_water() noexcept;

  [[nodiscard]] Stats stats() const;

  /// Sum of stats() across instance() and every shard() — what benches
  /// should report, since the batch pipelines draw from the shards, not the
  /// global pool. high_water_bytes is the sum of the per-arena peaks: an
  /// upper bound on the true simultaneous peak (the arenas need not have
  /// peaked at the same instant), which is the conservative direction for
  /// admission control.
  [[nodiscard]] static Stats aggregate_stats();

  /// trim() on instance() and every shard(); returns the number of bytes
  /// released back to the OS. The serve layer calls this when an idle
  /// service's pooled pages should be given back.
  static std::size_t trim_all() noexcept;

  /// reset_high_water() on instance() and every shard().
  static void reset_high_water_all() noexcept;

 private:
  static constexpr std::size_t kMinBlock = 256;
  [[nodiscard]] static std::size_t bucket_of(std::size_t bytes);

  mutable std::mutex mu_;
  std::array<std::vector<std::byte*>, 64> free_;  ///< per-log2 free lists
  Stats stats_;
};

/// RAII arena block for per-worker scratch inside kernel bodies; safe to
/// construct/destroy concurrently from pool workers.
class PooledBuffer {
 public:
  PooledBuffer(Arena& arena, std::size_t bytes)
      : arena_(&arena), data_(arena.acquire(bytes, capacity_)) {}
  ~PooledBuffer() { arena_->release(data_, capacity_); }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  [[nodiscard]] std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Views the block as `n` elements of T (unspecified contents).
  template <typename T>
  [[nodiscard]] std::span<T> as(std::size_t n) const {
    static_assert(std::is_trivially_copyable_v<T>);
    return {reinterpret_cast<T*>(data_), n};
  }

 private:
  Arena* arena_;
  std::size_t capacity_ = 0;
  std::byte* data_;
};

/// Epoch-stamped scratch table: a fixed-size slot array whose entries can be
/// invalidated in O(1) by bumping an epoch instead of refilling the storage.
/// This is the CPU analogue of the GPU trick of tagging shared-memory hash
/// slots with a batch id so a persistent block can start a new tile without
/// a synchronized clear. The LZSS match finder keeps one of these per worker
/// (thread_local) so the per-block `fill_n(head, -1)` reinitialization —
/// previously O(table) per block — disappears from the hot path.
///
/// A slot's payload is observable only when its stamp equals the current
/// epoch; new_epoch() therefore "clears" the table without touching it.
/// Stamps are 32-bit: on the ~4-billionth epoch the counter would alias, so
/// new_epoch() detects the wrap and performs one real clear.
template <typename T>
class StampedScratch {
 public:
  explicit StampedScratch(std::size_t n) : slots_(n), stamp_(n, 0) {}

  /// Invalidates every slot. O(1) except on 32-bit epoch wrap.
  void new_epoch() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  [[nodiscard]] bool has(std::size_t i) const { return stamp_[i] == epoch_; }

  /// Current-epoch payload of slot `i`, or `fallback` if the slot is stale.
  [[nodiscard]] T get_or(std::size_t i, T fallback) const {
    return has(i) ? slots_[i] : fallback;
  }

  void put(std::size_t i, T v) {
    slots_[i] = v;
    stamp_[i] = epoch_;
  }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// Per-stream scratch context threaded through the kernel entry points.
/// Spans returned by make() stay valid until reset()/destruction, which
/// hands every block back to the arena for the next invocation to reuse.
class Workspace {
 public:
  explicit Workspace(Arena& arena = Arena::instance()) : arena_(&arena) {}
  ~Workspace() { reset(); }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A span of `n` T's with unspecified contents; the caller must fully
  /// overwrite every element it later reads.
  template <typename T>
  [[nodiscard]] std::span<T> make(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::size_t cap = 0;
    std::byte* p = arena_->acquire(n * sizeof(T), cap);
    blocks_.push_back({p, cap});
    return {reinterpret_cast<T*>(p), n};
  }

  /// Returns every block to the arena; previously returned spans die.
  void reset() noexcept {
    for (const auto& b : blocks_) arena_->release(b.ptr, b.capacity);
    blocks_.clear();
  }

  [[nodiscard]] Arena& arena() const { return *arena_; }

 private:
  struct Block {
    std::byte* ptr;
    std::size_t capacity;
  };
  Arena* arena_;
  std::vector<Block> blocks_;
};

}  // namespace szi::dev
