// Device-style reductions: each "block" reduces a contiguous chunk into a
// partial, partials are combined by the launching thread — the standard
// two-phase GPU reduction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "device/arena.hh"
#include "device/launch.hh"

namespace szi::dev {

/// Two-phase reduction of `data` with a binary op and identity element.
template <typename T, typename Op>
[[nodiscard]] T reduce(std::span<const T> data, T identity, Op op,
                       std::size_t chunk = 1 << 16) {
  if (data.empty()) return identity;
  const std::size_t nchunks = ceil_div(data.size(), chunk);
  std::vector<T> partial(nchunks, identity);
  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, data.size());
        T acc = identity;
        for (std::size_t i = begin; i < end; ++i) acc = op(acc, data[i]);
        partial[c] = acc;
      },
      1);
  T acc = identity;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Minimum and maximum in one pass (used by the value-range profiler).
template <typename T>
struct MinMax {
  T min, max;
};

namespace detail {
template <typename T>
struct MinMaxPair {
  T lo, hi;
};

/// Core of minmax(): `partial` must hold ceil(n / 2^16) pairs; every slot is
/// overwritten, so unzeroed workspace memory is fine.
template <typename T>
[[nodiscard]] MinMax<T> minmax_over(std::span<const T> data,
                                    std::span<MinMaxPair<T>> partial) {
  const std::size_t chunk = 1 << 16;
  const std::size_t nchunks = ceil_div(data.size(), chunk);
  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, data.size());
        MinMaxPair<T> p{data[begin], data[begin]};
        for (std::size_t i = begin + 1; i < end; ++i) {
          if (data[i] < p.lo) p.lo = data[i];
          if (data[i] > p.hi) p.hi = data[i];
        }
        partial[c] = p;
      },
      1);
  MinMaxPair<T> acc = partial[0];
  for (std::size_t c = 1; c < nchunks; ++c) {
    if (partial[c].lo < acc.lo) acc.lo = partial[c].lo;
    if (partial[c].hi > acc.hi) acc.hi = partial[c].hi;
  }
  return {acc.lo, acc.hi};
}
}  // namespace detail

template <typename T>
[[nodiscard]] MinMax<T> minmax(std::span<const T> data) {
  if (data.empty()) return {T{}, T{}};
  std::vector<detail::MinMaxPair<T>> partial(
      ceil_div(data.size(), std::size_t{1} << 16));
  return detail::minmax_over<T>(data, partial);
}

/// Workspace form: the partial-pair scratch comes from the pool.
template <typename T>
[[nodiscard]] MinMax<T> minmax(std::span<const T> data, Workspace& ws) {
  if (data.empty()) return {T{}, T{}};
  auto partial =
      ws.make<detail::MinMaxPair<T>>(ceil_div(data.size(), std::size_t{1} << 16));
  return detail::minmax_over<T>(data, partial);
}

}  // namespace szi::dev
