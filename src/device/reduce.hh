// Device-style reductions: each "block" reduces a contiguous chunk into a
// partial, partials are combined by the launching thread — the standard
// two-phase GPU reduction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "device/launch.hh"

namespace szi::dev {

/// Two-phase reduction of `data` with a binary op and identity element.
template <typename T, typename Op>
[[nodiscard]] T reduce(std::span<const T> data, T identity, Op op,
                       std::size_t chunk = 1 << 16) {
  if (data.empty()) return identity;
  const std::size_t nchunks = ceil_div(data.size(), chunk);
  std::vector<T> partial(nchunks, identity);
  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, data.size());
        T acc = identity;
        for (std::size_t i = begin; i < end; ++i) acc = op(acc, data[i]);
        partial[c] = acc;
      },
      1);
  T acc = identity;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Minimum and maximum in one pass (used by the value-range profiler).
template <typename T>
struct MinMax {
  T min, max;
};

template <typename T>
[[nodiscard]] MinMax<T> minmax(std::span<const T> data) {
  struct Pair {
    T lo, hi;
  };
  if (data.empty()) return {T{}, T{}};
  const Pair identity{data[0], data[0]};
  const std::size_t chunk = 1 << 16;
  const std::size_t nchunks = ceil_div(data.size(), chunk);
  std::vector<Pair> partial(nchunks, identity);
  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, data.size());
        Pair p{data[begin], data[begin]};
        for (std::size_t i = begin + 1; i < end; ++i) {
          if (data[i] < p.lo) p.lo = data[i];
          if (data[i] > p.hi) p.hi = data[i];
        }
        partial[c] = p;
      },
      1);
  Pair acc = partial[0];
  for (const Pair& p : partial) {
    if (p.lo < acc.lo) acc.lo = p.lo;
    if (p.hi > acc.hi) acc.hi = p.hi;
  }
  return {acc.lo, acc.hi};
}

}  // namespace szi::dev
