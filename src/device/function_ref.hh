// A non-owning callable reference for synchronous hot paths.
//
// ThreadPool::parallel_for used to take `const std::function&`, which costs a
// heap allocation (capture list) plus double indirection on every kernel
// launch. Launches are synchronous — the callable outlives the call by
// construction — so a borrowed {object pointer, trampoline} pair is all that
// is needed. This is the usual `function_ref` proposal (P0792) reduced to
// what the device layer uses.
#pragma once

#include <type_traits>
#include <utility>

namespace szi::dev {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = delete;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): by design, like string_view.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace szi::dev
