// CUDA-stream-like asynchronous execution on top of the thread pool.
//
// A Stream is an in-order work queue with its own host thread: tasks
// submitted to it run one after another, asynchronously with respect to the
// submitting thread and to other streams. Kernels enqueued on different
// streams execute concurrently on the shared ThreadPool (the pool accepts
// overlapping launches, like a GPU running blocks from several grids at
// once), which is what lets one field's interpolation overlap another
// field's Huffman encode in the batched pipeline.
//
// Semantics mirror the CUDA runtime:
//   - submit()/launch_*_async() enqueue and return immediately;
//   - Event + record()/wait() order work across streams;
//   - synchronize() blocks until the queue drains and rethrows the first
//     exception any task raised (the stream is poisoned in between: tasks
//     submitted after a failure are skipped, like work on an errored CUDA
//     stream, so dependent stages never observe half-written buffers);
//   - destruction synchronizes (exceptions are swallowed — call
//     synchronize() first if you care, as with cudaStreamDestroy).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "device/dims.hh"
#include "device/launch.hh"

namespace szi::dev {

/// A completion marker recorded on a stream. Default-constructed events are
/// complete; record() arms them until the stream's queue reaches the record
/// point. Copyable — copies share the completion state.
class Event {
 public:
  Event() : st_(std::make_shared<State>()) {}

  /// Blocks the calling host thread until the event completes.
  void wait() const {
    std::unique_lock lk(st_->mu);
    st_->cv.wait(lk, [&] { return st_->done; });
  }

  /// Non-blocking completion check (cudaEventQuery).
  [[nodiscard]] bool query() const {
    std::lock_guard lk(st_->mu);
    return st_->done;
  }

 private:
  friend class Stream;
  struct State {
    mutable std::mutex mu;
    std::condition_variable cv;
    bool done = true;
  };
  std::shared_ptr<State> st_;
};

class Stream {
 public:
  Stream();
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues `fn`; it runs after everything previously submitted. Returns
  /// immediately. If the stream is poisoned by an earlier exception, `fn`
  /// is skipped when its turn comes.
  void submit(std::function<void()> fn);

  /// Records a completion marker after all currently-enqueued work.
  [[nodiscard]] Event record();

  /// Makes work submitted to *this* stream after the call wait for `ev`
  /// (typically recorded on another stream) before running.
  void wait(Event ev);

  /// Blocks until every enqueued task has run; rethrows the first captured
  /// exception and clears the poisoned state.
  void synchronize();

  /// True once a task has thrown and synchronize() has not yet been called.
  [[nodiscard]] bool errored() const;

 private:
  struct Task {
    std::function<void()> fn;
    bool control;  ///< event plumbing: runs even on a poisoned stream
  };
  void loop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Task> q_;
  std::exception_ptr error_;
  bool busy_ = false;
  bool stop_ = false;
  std::thread thread_;
};

/// Non-blocking counterpart of launch_blocks(): enqueues the grid launch on
/// `s` and returns immediately. `body` is copied into the task (it outlives
/// the caller's frame). Synchronize or record an event to observe results.
template <typename Body>
void launch_blocks_async(Stream& s, const Dim3& grid, Body body) {
  s.submit([grid, body = std::move(body)]() mutable {
    launch_blocks(grid, body);
  });
}

/// Non-blocking counterpart of launch_linear().
template <typename Body>
void launch_linear_async(Stream& s, std::size_t count, Body body,
                         std::size_t grain = 1024) {
  s.submit([count, body = std::move(body), grain]() mutable {
    launch_linear(count, body, grain);
  });
}

}  // namespace szi::dev
