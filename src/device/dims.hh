// Basic index-space types for the CUDA-like execution model.
//
// The paper's kernels are written against CUDA's grid/block hierarchy; this
// header provides the equivalent portable vocabulary (Dim3, Extent3, row-major
// linearization with x fastest, as in cuSZ's memory layout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace szi::dev {

/// 3D size/index triple; `x` is the fastest-varying dimension.
struct Dim3 {
  std::size_t x = 1, y = 1, z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(std::size_t x_, std::size_t y_ = 1, std::size_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  [[nodiscard]] constexpr std::size_t volume() const { return x * y * z; }
  [[nodiscard]] constexpr bool operator==(const Dim3&) const = default;

  /// Number of significant dimensions (trailing 1s dropped, x always counts).
  [[nodiscard]] constexpr int rank() const {
    if (z > 1) return 3;
    if (y > 1) return 2;
    return 1;
  }
};

/// Row-major linear index with x fastest.
[[nodiscard]] constexpr std::size_t linearize(const Dim3& dims, std::size_t x,
                                              std::size_t y, std::size_t z) {
  return (z * dims.y + y) * dims.x + x;
}

/// Inverse of linearize().
struct Coord3 {
  std::size_t x = 0, y = 0, z = 0;
  [[nodiscard]] constexpr bool operator==(const Coord3&) const = default;
};

[[nodiscard]] constexpr Coord3 delinearize(const Dim3& dims, std::size_t i) {
  Coord3 c;
  c.x = i % dims.x;
  c.y = (i / dims.x) % dims.y;
  c.z = i / (dims.x * dims.y);
  return c;
}

/// Ceiling division, used for grid sizing.
template <typename T = std::size_t>
[[nodiscard]] constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Grid dimensions covering `data` with blocks of `block` elements per axis.
[[nodiscard]] constexpr Dim3 grid_for(const Dim3& data, const Dim3& block) {
  return Dim3{ceil_div(data.x, block.x), ceil_div(data.y, block.y),
              ceil_div(data.z, block.z)};
}

[[nodiscard]] inline std::string to_string(const Dim3& d) {
  return std::to_string(d.x) + "x" + std::to_string(d.y) + "x" +
         std::to_string(d.z);
}

}  // namespace szi::dev
