#include "device/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace szi::dev {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SZI_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n >= 1 && n <= 1024) return static_cast<unsigned>(n);
    }
    return std::max(1u, std::thread::hardware_concurrency());
  }());
  return pool;
}

ThreadPool::ThreadPool(unsigned workers) : workers_(std::max(1u, workers)) {
  // Worker 0 is the calling thread; only spawn the extras.
  threads_.reserve(workers_ - 1);
  for (unsigned i = 1; i < workers_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

namespace {
// Set while a thread is inside a launch; nested launches (a kernel spawning
// another) degrade to inline execution instead of deadlocking the pool.
thread_local bool g_in_launch = false;
}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (workers_ == 1 || count <= grain || g_in_launch) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  g_in_launch = true;
  struct Reset {
    ~Reset() { g_in_launch = false; }
  } reset;

  std::size_t my_generation;
  {
    std::lock_guard lk(mu_);
    body_ = &body;
    count_ = count;
    grain_ = grain;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_ - 1;
    my_generation = ++generation_;
  }
  cv_start_.notify_all();

  drain(body);  // the caller works too

  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return active_ == 0 && generation_ == my_generation; });
  body_ = nullptr;
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

void ThreadPool::drain(const std::function<void(std::size_t)>& body) {
  try {
    for (;;) {
      const std::size_t begin =
          next_.fetch_add(grain_, std::memory_order_relaxed);
      if (begin >= count_) break;
      const std::size_t end = std::min(begin + grain_, count_);
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  } catch (...) {
    // Record the first failure and stop handing out work; the caller
    // rethrows once the launch drains.
    std::lock_guard lk(mu_);
    if (!error_) error_ = std::current_exception();
    next_.store(count_, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop() {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || (body_ && generation_ != seen_generation); });
      if (stop_) return;
      seen_generation = generation_;
      body = body_;
    }
    g_in_launch = true;
    drain(*body);
    g_in_launch = false;
    {
      std::lock_guard lk(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace szi::dev
