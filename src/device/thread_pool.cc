#include "device/thread_pool.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace szi::dev {

namespace {
/// Upper bound on SZI_THREADS; larger requests are clamped, not rejected.
constexpr long kMaxWorkers = 1024;
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool([]() -> unsigned {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const char* env = std::getenv("SZI_THREADS");
    if (!env || !*env) return hw;
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(env, &end, 10);
    if (end == env || *end != '\0') {
      // Trailing garbage ("4x") or no digits at all: the value is not a
      // number, so the user's intent is unknowable — warn and fall back.
      std::fprintf(stderr,
                   "szi: ignoring unparsable SZI_THREADS=\"%s\" "
                   "(using %u hardware threads)\n",
                   env, hw);
      return hw;
    }
    if (errno == ERANGE || n > kMaxWorkers) {
      std::fprintf(stderr,
                   "szi: SZI_THREADS=%s exceeds the %ld-worker cap; "
                   "clamping to %ld\n",
                   env, kMaxWorkers, kMaxWorkers);
      return static_cast<unsigned>(kMaxWorkers);
    }
    if (n < 1) {
      std::fprintf(stderr, "szi: SZI_THREADS=%s is below 1; clamping to 1\n",
                   env);
      return 1u;
    }
    return static_cast<unsigned>(n);
  }());
  return pool;
}

ThreadPool::ThreadPool(unsigned workers) : workers_(std::max(1u, workers)) {
  // Worker 0 is the calling thread; only spawn the extras.
  threads_.reserve(workers_ - 1);
  for (unsigned i = 1; i < workers_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

namespace {
// Set while a thread is inside a launch; nested launches (a kernel spawning
// another) degrade to inline execution instead of deadlocking the pool.
thread_local bool g_in_launch = false;
}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              FunctionRef<void(std::size_t)> body,
                              std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (workers_ == 1 || count <= grain || g_in_launch) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  g_in_launch = true;
  struct Reset {
    ~Reset() { g_in_launch = false; }
  } reset;

  // One allocation per launch (the descriptor); the body itself is borrowed,
  // never copied onto the heap. The shared_ptr keeps the descriptor alive
  // for workers that are between claiming and abandoning it.
  auto ln = std::make_shared<Launch>(body, count, grain);
  {
    std::lock_guard lk(mu_);
    queue_.push_back(ln);
  }
  cv_start_.notify_all();

  drain(*ln);  // the caller works too

  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return ln->done; });
  if (ln->error) std::rethrow_exception(std::exchange(ln->error, nullptr));
}

void ThreadPool::drain(Launch& ln) {
  for (;;) {
    // in_flight brackets the claim itself, so "no more claims possible" and
    // "no chunk executing" can be checked together as the completion
    // condition without missing a concurrent claimer.
    ln.in_flight.fetch_add(1);
    const std::size_t begin = ln.next.fetch_add(ln.grain);
    if (begin >= ln.count) {
      if (ln.in_flight.fetch_sub(1) == 1) finish_if_complete(ln);
      return;
    }
    const std::size_t end = std::min(begin + ln.grain, ln.count);
    try {
      for (std::size_t i = begin; i < end; ++i) ln.body(i);
    } catch (...) {
      // Record the first failure and stop handing out work; the submitter
      // rethrows once the launch drains.
      std::lock_guard lk(mu_);
      if (!ln.error) ln.error = std::current_exception();
      ln.next.store(ln.count);
    }
    if (ln.in_flight.fetch_sub(1) == 1 && ln.next.load() >= ln.count)
      finish_if_complete(ln);
  }
}

void ThreadPool::finish_if_complete(Launch& ln) {
  std::lock_guard lk(mu_);
  if (ln.done) return;
  if (ln.next.load() < ln.count || ln.in_flight.load() != 0) return;
  ln.done = true;
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const auto& p) { return p.get() == &ln; });
  if (it != queue_.end()) queue_.erase(it);
  cv_done_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Launch> ln;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] {
        // Drop launches whose index space is exhausted — their remaining
        // chunks are finishing on other threads; re-draining them would
        // busy-spin.
        while (!queue_.empty() &&
               queue_.front()->next.load() >= queue_.front()->count)
          queue_.pop_front();
        return stop_ || !queue_.empty();
      });
      if (stop_) return;
      ln = queue_.front();
    }
    g_in_launch = true;
    drain(*ln);
    g_in_launch = false;
  }
}

}  // namespace szi::dev
