#include "device/stream.hh"

namespace szi::dev {

Stream::Stream() : thread_([this] { loop(); }) {}

Stream::~Stream() {
  // Drain without throwing (matches cudaStreamDestroy: pending work
  // completes; errors are only reported through explicit synchronization).
  {
    std::unique_lock lk(mu_);
    cv_idle_.wait(lk, [&] { return q_.empty() && !busy_; });
    stop_ = true;
  }
  cv_work_.notify_all();
  thread_.join();
}

void Stream::submit(std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    q_.push_back(Task{std::move(fn), /*control=*/false});
  }
  cv_work_.notify_one();
}

Event Stream::record() {
  Event ev;
  {
    std::lock_guard lk(ev.st_->mu);
    ev.st_->done = false;
  }
  auto st = ev.st_;
  {
    std::lock_guard lk(mu_);
    q_.push_back(Task{[st] {
                        std::lock_guard elk(st->mu);
                        st->done = true;
                        st->cv.notify_all();
                      },
                      /*control=*/true});
  }
  cv_work_.notify_one();
  return ev;
}

void Stream::wait(Event ev) {
  {
    std::lock_guard lk(mu_);
    q_.push_back(Task{[ev] { ev.wait(); }, /*control=*/true});
  }
  cv_work_.notify_one();
}

void Stream::synchronize() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [&] { return q_.empty() && !busy_; });
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

bool Stream::errored() const {
  std::lock_guard lk(mu_);
  return error_ != nullptr;
}

void Stream::loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !q_.empty(); });
      if (stop_ && q_.empty()) return;
      task = std::move(q_.front());
      q_.pop_front();
      busy_ = true;
    }
    // Control tasks (event completion/waits) always run, so events recorded
    // on a poisoned stream still fire and cross-stream waiters never hang.
    bool run = task.control;
    if (!run) {
      std::lock_guard lk(mu_);
      run = error_ == nullptr;
    }
    if (run) {
      try {
        task.fn();
      } catch (...) {
        std::lock_guard lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lk(mu_);
      busy_ = false;
      if (q_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace szi::dev
