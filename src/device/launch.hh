// CUDA-like kernel launch on top of the thread pool.
//
// Kernels in this codebase follow the "block function" portability pattern:
// the unit of scheduling is a *block* (identified by a Dim3 block index), and
// the kernel body iterates the block's threads itself. This keeps the exact
// decomposition the paper describes (one thread block per 32x8x8 tile, one
// chunk per Huffman encoder thread, ...) while remaining portable C++.
#pragma once

#include <cstddef>

#include "device/dims.hh"
#include "device/thread_pool.hh"

namespace szi::dev {

/// Identifier of one scheduled block within a launch.
struct BlockIdx {
  std::size_t x = 0, y = 0, z = 0;
  std::size_t linear = 0;
};

/// Launches `grid.volume()` blocks; `body(BlockIdx)` runs once per block,
/// distributed over the pool. Synchronous, like a CUDA launch followed by
/// cudaDeviceSynchronize(). The body is borrowed for the duration of the
/// call (FunctionRef), so no per-launch heap allocation happens here; for
/// the asynchronous counterpart see device/stream.hh.
template <typename Body>
void launch_blocks(const Dim3& grid, Body&& body) {
  auto& pool = ThreadPool::instance();
  const std::size_t n = grid.volume();
  pool.parallel_for(n, [&](std::size_t i) {
    const Coord3 c = delinearize(grid, i);
    body(BlockIdx{c.x, c.y, c.z, i});
  });
}

/// 1D convenience: `body(i)` for i in [0, count), chunked by `grain`.
template <typename Body>
void launch_linear(std::size_t count, Body&& body, std::size_t grain = 1024) {
  ThreadPool::instance().parallel_for(count, [&](std::size_t i) { body(i); },
                                      grain);
}

}  // namespace szi::dev
