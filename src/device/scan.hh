// Device-style exclusive prefix sum (scan-then-propagate), used to turn
// per-chunk Huffman bit counts into chunk offsets, and by stream compaction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "device/launch.hh"

namespace szi::dev {

/// Exclusive scan of `in` into `out` (same length); returns the grand total.
/// Three phases, as on a GPU: per-chunk local scan, serial scan of chunk
/// totals, parallel propagation of chunk bases.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out,
                 std::size_t chunk = 1 << 15) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  const std::size_t nchunks = ceil_div(n, chunk);
  std::vector<T> totals(nchunks);

  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        T acc{};
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = acc;
          acc += in[i];
        }
        totals[c] = acc;
      },
      1);

  T running{};
  for (std::size_t c = 0; c < nchunks; ++c) {
    const T t = totals[c];
    totals[c] = running;
    running += t;
  }

  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        const T base = totals[c];
        for (std::size_t i = begin; i < end; ++i) out[i] += base;
      },
      1);
  return running;
}

}  // namespace szi::dev
