#include "device/arena.hh"

#include <bit>
#include <new>

namespace szi::dev {

Arena& Arena::instance() {
  static Arena arena;
  return arena;
}

Arena& Arena::shard(std::size_t i) {
  // Function-local statics give each shard the same magic-static lifetime
  // as instance(); an array member would need manual once-init plumbing.
  static std::array<Arena, kShards> shards;
  return shards[i % kShards];
}

Arena::~Arena() { trim(); }

std::size_t Arena::bucket_of(std::size_t bytes) {
  return std::bit_width(std::max(bytes, kMinBlock) - 1);
}

std::byte* Arena::acquire(std::size_t bytes, std::size_t& capacity) {
  const std::size_t b = bucket_of(bytes);
  capacity = std::size_t{1} << b;
  {
    std::lock_guard lk(mu_);
    auto& list = free_[b];
    if (!list.empty()) {
      std::byte* p = list.back();
      list.pop_back();
      ++stats_.hits;
      ++stats_.outstanding;
      stats_.outstanding_bytes += capacity;
      --stats_.pooled_blocks;
      stats_.pooled_bytes -= capacity;
      return p;
    }
    ++stats_.misses;
    ++stats_.outstanding;
    stats_.outstanding_bytes += capacity;
    // A miss grows the OS footprint; hits recycle held bytes, so held_bytes
    // and the high-water move only here and in trim().
    stats_.held_bytes += capacity;
    stats_.high_water_bytes =
        std::max(stats_.high_water_bytes, stats_.held_bytes);
  }
  // Allocate outside the lock; 64-byte alignment keeps any element type and
  // cache-line-sensitive kernels happy.
  return static_cast<std::byte*>(
      ::operator new(capacity, std::align_val_t{64}));
}

void Arena::release(std::byte* p, std::size_t capacity) noexcept {
  if (p == nullptr) return;
  const std::size_t b = bucket_of(capacity);
  std::lock_guard lk(mu_);
  free_[b].push_back(p);
  --stats_.outstanding;
  stats_.outstanding_bytes -= capacity;
  ++stats_.pooled_blocks;
  stats_.pooled_bytes += capacity;
}

void Arena::trim() noexcept {
  std::lock_guard lk(mu_);
  for (std::size_t b = 0; b < free_.size(); ++b) {
    for (std::byte* p : free_[b])
      ::operator delete(p, std::size_t{1} << b, std::align_val_t{64});
    free_[b].clear();
  }
  stats_.held_bytes -= stats_.pooled_bytes;
  stats_.pooled_blocks = 0;
  stats_.pooled_bytes = 0;
}

void Arena::reset_high_water() noexcept {
  std::lock_guard lk(mu_);
  stats_.high_water_bytes = stats_.held_bytes;
}

Arena::Stats Arena::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

Arena::Stats Arena::aggregate_stats() {
  Stats total = instance().stats();
  for (std::size_t i = 0; i < kShards; ++i) {
    const Stats s = shard(i).stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.pooled_blocks += s.pooled_blocks;
    total.pooled_bytes += s.pooled_bytes;
    total.outstanding += s.outstanding;
    total.outstanding_bytes += s.outstanding_bytes;
    total.held_bytes += s.held_bytes;
    total.high_water_bytes += s.high_water_bytes;
  }
  return total;
}

std::size_t Arena::trim_all() noexcept {
  const std::size_t before = aggregate_stats().held_bytes;
  instance().trim();
  for (std::size_t i = 0; i < kShards; ++i) shard(i).trim();
  return before - aggregate_stats().held_bytes;
}

void Arena::reset_high_water_all() noexcept {
  instance().reset_high_water();
  for (std::size_t i = 0; i < kShards; ++i) shard(i).reset_high_water();
}

}  // namespace szi::dev
