// A small persistent worker pool used as the "device" behind kernel launches.
//
// Workers are created once (lazily, on first use) and parked on a condition
// variable between launches, mirroring how a GPU's SMs persist across kernel
// invocations. Work is handed out as a half-open index range consumed through
// an atomic counter (dynamic scheduling), which maps naturally onto the
// block-index iteration the kernels in this codebase use.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace szi::dev {

class ThreadPool {
 public:
  /// Global pool shared by all kernel launches. Sized to the hardware, or
  /// to SZI_THREADS if set (read once, at first use).
  static ThreadPool& instance();

  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes `body(i)` for every i in [0, count), distributing chunks of
  /// `grain` indices across workers. The calling thread participates, so the
  /// call is synchronous — on return every index has been processed. If any
  /// body throws, one of the exceptions is rethrown on the caller after the
  /// launch drains.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  [[nodiscard]] unsigned worker_count() const { return workers_; }

 private:
  void worker_loop();
  void drain(const std::function<void(std::size_t)>& body);

  unsigned workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
  std::size_t generation_ = 0;
  unsigned active_ = 0;
  bool stop_ = false;
};

}  // namespace szi::dev
