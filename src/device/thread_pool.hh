// A small persistent worker pool used as the "device" behind kernel launches.
//
// Workers are created once (lazily, on first use) and parked on a condition
// variable between launches, mirroring how a GPU's SMs persist across kernel
// invocations. Work is handed out as a half-open index range consumed through
// an atomic counter (dynamic scheduling), which maps naturally onto the
// block-index iteration the kernels in this codebase use.
//
// The pool accepts launches from any number of threads concurrently — the
// hardware analogue of multiple CUDA streams feeding one device. Each
// parallel_for enqueues a launch descriptor; idle workers drain whichever
// launches are active (FIFO between launches, dynamic chunking within one),
// so a stream's kernel can execute while another stream's kernel is still in
// flight, and tail blocks of one launch backfill with blocks of the next.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "device/function_ref.hh"

namespace szi::dev {

class ThreadPool {
 public:
  /// Global pool shared by all kernel launches. Sized to the hardware, or
  /// to SZI_THREADS if set (read once, at first use).
  static ThreadPool& instance();

  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes `body(i)` for every i in [0, count), distributing chunks of
  /// `grain` indices across workers. The calling thread participates, so the
  /// call is synchronous — on return every index has been processed. If any
  /// body throws, one of the exceptions is rethrown on the caller after the
  /// launch drains. Safe to call from multiple threads concurrently; each
  /// call is an independent launch.
  void parallel_for(std::size_t count, FunctionRef<void(std::size_t)> body,
                    std::size_t grain = 1);

  [[nodiscard]] unsigned worker_count() const { return workers_; }

 private:
  /// One in-flight launch. Lives on the submitting thread's shared_ptr plus
  /// transient copies held by draining workers; `done` is the completion
  /// signal the submitter waits on.
  struct Launch {
    Launch(FunctionRef<void(std::size_t)> b, std::size_t c, std::size_t g)
        : body(b), count(c), grain(g) {}
    FunctionRef<void(std::size_t)> body;
    std::size_t count;
    std::size_t grain;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> in_flight{0};
    std::exception_ptr error;  // guarded by the pool mutex
    bool done = false;         // guarded by the pool mutex
  };

  /// Claims and runs chunks of `ln` until its index space is exhausted.
  /// Returns once no further chunk can be claimed (other workers may still
  /// be running theirs).
  void drain(Launch& ln);
  void finish_if_complete(Launch& ln);
  void worker_loop();

  unsigned workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;  // workers: queue non-empty or stop
  std::condition_variable cv_done_;   // submitters: their launch completed
  std::deque<std::shared_ptr<Launch>> queue_;  // launches with unclaimed work
  bool stop_ = false;
};

}  // namespace szi::dev
