// Runtime SIMD dispatch for the explicit AVX2 kernels.
//
// The build stays at baseline x86-64 (no global -mavx2), so every AVX2
// function in the tree carries a per-function target("avx2") attribute and
// is only ever entered behind has_avx2(). Keeping the ISA check runtime
// (not compile-time) means one binary serves both old and new hosts, and
// the scalar fallbacks remain live, tested code paths everywhere.
//
// Bit-identity contract: an AVX2 kernel in this codebase must replicate its
// scalar counterpart's floating-point operations in the exact same order
// with the same roundings. Baseline x86-64 has no FMA and the target
// attribute does not enable it, so the compiler cannot contract the
// intrinsic mul/add chains — the lanes compute precisely what the scalar
// loop computes, and archives/reconstructions stay byte-identical whether
// the dispatch takes the vector or the scalar path (the worker-count
// determinism sweep runs one instance with SZI_NO_AVX2=1 to prove it).
#pragma once

#include <cstdint>

namespace szi::dev {

/// True when the host supports AVX2 and the SZI_NO_AVX2 environment
/// variable is unset/empty (the kill switch exists for A/B testing the
/// scalar fallbacks on AVX2 hardware). Cached after the first call.
[[nodiscard]] bool has_avx2();

/// Bit-plane transpose of one full bitshuffle block: 1024 u16 elements into
/// 16 LSB-first bit planes of 128 bytes each (plane k, byte i/8, bit i%8 =
/// bit k of element i — the layout lossless/bitshuffle.cc documents). Only
/// full blocks dispatch here; tail blocks stay scalar. Integer-only, so the
/// bit-identity contract above is structural rather than rounding-dependent.
/// Call only behind has_avx2().
void bitshuffle16_block_avx2(const std::uint16_t* in, std::uint8_t* planes);

/// Inverse of bitshuffle16_block_avx2: one full 16x128-byte plane block back
/// into 1024 u16 elements. Call only behind has_avx2().
void bitunshuffle16_block_avx2(const std::uint8_t* planes, std::uint16_t* out);

}  // namespace szi::dev
