// Runtime SIMD dispatch for the explicit AVX2 kernels.
//
// The build stays at baseline x86-64 (no global -mavx2), so every AVX2
// function in the tree carries a per-function target("avx2") attribute and
// is only ever entered behind has_avx2(). Keeping the ISA check runtime
// (not compile-time) means one binary serves both old and new hosts, and
// the scalar fallbacks remain live, tested code paths everywhere.
//
// Bit-identity contract: an AVX2 kernel in this codebase must replicate its
// scalar counterpart's floating-point operations in the exact same order
// with the same roundings. Baseline x86-64 has no FMA and the target
// attribute does not enable it, so the compiler cannot contract the
// intrinsic mul/add chains — the lanes compute precisely what the scalar
// loop computes, and archives/reconstructions stay byte-identical whether
// the dispatch takes the vector or the scalar path (the worker-count
// determinism sweep runs one instance with SZI_NO_AVX2=1 to prove it).
#pragma once

namespace szi::dev {

/// True when the host supports AVX2 and the SZI_NO_AVX2 environment
/// variable is unset/empty (the kill switch exists for A/B testing the
/// scalar fallbacks on AVX2 hardware). Cached after the first call.
[[nodiscard]] bool has_avx2();

}  // namespace szi::dev
