// Stream compaction: gather the sparse elements a predicate selects into a
// dense output, preserving order. This is the primitive §VI-A of the paper
// uses to collect quantization outliers ("we gather them as outliers and
// losslessly store them ... using the stream compaction technique").
//
// The implementation is the canonical GPU scheme: per-chunk flag counting,
// an exclusive scan over chunk counts, then a parallel scatter. An
// atomic-append variant is provided as well (order-relaxed, like an
// atomicAdd-based compactor) for workloads that don't need ordering.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "device/launch.hh"

namespace szi::dev {

/// Order-preserving compaction. `pred(i)` selects index i; `emit(i, slot)`
/// writes element i to dense position `slot`. Returns the number selected.
template <typename Pred, typename Emit>
std::size_t compact_indices(std::size_t n, Pred&& pred, Emit&& emit,
                            std::size_t chunk = 1 << 15) {
  if (n == 0) return 0;
  const std::size_t nchunks = ceil_div(n, chunk);
  std::vector<std::size_t> counts(nchunks);

  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        std::size_t cnt = 0;
        for (std::size_t i = begin; i < end; ++i) cnt += pred(i) ? 1 : 0;
        counts[c] = cnt;
      },
      1);

  std::size_t total = 0;
  for (auto& c : counts) {
    const std::size_t t = c;
    c = total;
    total += t;
  }

  launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        std::size_t slot = counts[c];
        for (std::size_t i = begin; i < end; ++i)
          if (pred(i)) emit(i, slot++);
      },
      1);
  return total;
}

/// Unordered compaction via an atomic cursor (the GPU atomicAdd idiom).
template <typename Pred, typename Emit>
std::size_t compact_indices_unordered(std::size_t n, Pred&& pred, Emit&& emit) {
  std::atomic<std::size_t> cursor{0};
  launch_linear(n, [&](std::size_t i) {
    if (pred(i)) emit(i, cursor.fetch_add(1, std::memory_order_relaxed));
  });
  return cursor.load();
}

}  // namespace szi::dev
