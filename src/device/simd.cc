#include "device/simd.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace szi::dev {

bool has_avx2() {
  static const bool ok = [] {
    if (const char* env = std::getenv("SZI_NO_AVX2"); env && *env) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return ok;
}

namespace {
/// Fixed geometry of a full bitshuffle block (lossless/bitshuffle.cc
/// static_asserts its kShuffleBlock against this): 1024 u16 elements,
/// 16 planes of 1024/8 = 128 bytes.
constexpr std::size_t kBlockElems = 1024;
constexpr std::size_t kPlaneBytes = kBlockElems / 8;
}  // namespace

#if defined(__x86_64__)

[[gnu::target("avx2")]] void bitshuffle16_block_avx2(const std::uint16_t* in,
                                                     std::uint8_t* planes) {
  const __m256i lo_mask = _mm256_set1_epi16(0x00FF);
  for (std::size_t j = 0; j < kBlockElems / 32; ++j) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 32 * j));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 32 * j + 16));
    // Split the 32 elements into their low and high bytes, each packed as 32
    // consecutive bytes in element order. packus is exact here (inputs are
    // masked/shifted below 256); the 0xD8 permute undoes its lane split.
    const __m256i lo = _mm256_permute4x64_epi64(
        _mm256_packus_epi16(_mm256_and_si256(v0, lo_mask),
                            _mm256_and_si256(v1, lo_mask)),
        0xD8);
    const __m256i hi = _mm256_permute4x64_epi64(
        _mm256_packus_epi16(_mm256_srli_epi16(v0, 8), _mm256_srli_epi16(v1, 8)),
        0xD8);
    for (unsigned k = 0; k < 8; ++k) {
      // slli_epi64 by (7-k) <= 7 lifts each byte's bit k to bit 7 of that
      // same byte (a shift under 8 cannot pull bits across a byte from
      // below into position 7), so movemask collects one plane bit per
      // element, already LSB-first in element order.
      const auto pl = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_slli_epi64(lo, 7 - static_cast<int>(k))));
      const auto ph = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_slli_epi64(hi, 7 - static_cast<int>(k))));
      std::memcpy(planes + k * kPlaneBytes + 4 * j, &pl, 4);
      std::memcpy(planes + (8 + k) * kPlaneBytes + 4 * j, &ph, 4);
    }
  }
}

[[gnu::target("avx2")]] void bitunshuffle16_block_avx2(
    const std::uint8_t* planes, std::uint16_t* out) {
  // Byte i of the shuffled broadcast must hold the plane byte carrying
  // element i's bit: plane byte i/8. shuffle_epi8 indexes within each
  // 128-bit lane of set1_epi32(w) = [w0 w1 w2 w3 | w0 w1 w2 w3] repeated.
  const __m256i byte_idx = _mm256_setr_epi8(
      0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,  // elements 0..15
      2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3); // elements 16..31
  // Byte i selects bit i%8 of its plane byte.
  const __m256i bit_sel = _mm256_setr_epi8(
      1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
      1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
  for (std::size_t j = 0; j < kBlockElems / 32; ++j) {
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (unsigned k = 0; k < 16; ++k) {
      std::uint32_t w;
      std::memcpy(&w, planes + k * kPlaneBytes + 4 * j, 4);
      const __m256i spread = _mm256_shuffle_epi8(
          _mm256_set1_epi32(static_cast<int>(w)), byte_idx);
      const __m256i hit =
          _mm256_cmpeq_epi8(_mm256_and_si256(spread, bit_sel), bit_sel);
      const __m256i contrib = _mm256_and_si256(
          hit, _mm256_set1_epi8(static_cast<char>(1u << (k & 7u))));
      if (k < 8)
        acc_lo = _mm256_or_si256(acc_lo, contrib);
      else
        acc_hi = _mm256_or_si256(acc_hi, contrib);
    }
    // Interleave low/high bytes back into u16s. The 0xD8 permutes reorder
    // both accumulators so unpacklo yields elements 0..15 and unpackhi
    // elements 16..31 in order.
    const __m256i lp = _mm256_permute4x64_epi64(acc_lo, 0xD8);
    const __m256i hp = _mm256_permute4x64_epi64(acc_hi, 0xD8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32 * j),
                        _mm256_unpacklo_epi8(lp, hp));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32 * j + 16),
                        _mm256_unpackhi_epi8(lp, hp));
  }
}

#else  // !defined(__x86_64__)

// has_avx2() is constant-false off x86, so these are unreachable; scalar
// mirrors keep the symbols link-safe and correct if ever called anyway.
void bitshuffle16_block_avx2(const std::uint16_t* in, std::uint8_t* planes) {
  std::memset(planes, 0, 16 * kPlaneBytes);
  for (std::size_t i = 0; i < kBlockElems; ++i)
    for (unsigned bit = 0; bit < 16; ++bit)
      if ((in[i] >> bit) & 1u)
        planes[bit * kPlaneBytes + i / 8] |=
            static_cast<std::uint8_t>(1u << (i % 8));
}

void bitunshuffle16_block_avx2(const std::uint8_t* planes,
                               std::uint16_t* out) {
  for (std::size_t i = 0; i < kBlockElems; ++i) {
    std::uint16_t v = 0;
    for (unsigned bit = 0; bit < 16; ++bit)
      if ((planes[bit * kPlaneBytes + i / 8] >> (i % 8)) & 1u)
        v = static_cast<std::uint16_t>(v | (1u << bit));
    out[i] = v;
  }
}

#endif

}  // namespace szi::dev
