#include "device/simd.hh"

#include <cstdlib>

namespace szi::dev {

bool has_avx2() {
  static const bool ok = [] {
    if (const char* env = std::getenv("SZI_NO_AVX2"); env && *env) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return ok;
}

}  // namespace szi::dev
