# Empty dependencies file for szi.
# This may be replaced when dependencies are built.
