file(REMOVE_RECURSE
  "CMakeFiles/szi.dir/main.cc.o"
  "CMakeFiles/szi.dir/main.cc.o.d"
  "szi"
  "szi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
