file(REMOVE_RECURSE
  "CMakeFiles/szi_cli.dir/cli.cc.o"
  "CMakeFiles/szi_cli.dir/cli.cc.o.d"
  "libszi_cli.a"
  "libszi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
