
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cc" "src/cli/CMakeFiles/szi_cli.dir/cli.cc.o" "gcc" "src/cli/CMakeFiles/szi_cli.dir/cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/baselines/CMakeFiles/szi_baselines.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/io/CMakeFiles/szi_io.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/szi_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/predictor/CMakeFiles/szi_predictor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/huffman/CMakeFiles/szi_huffman.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/quant/CMakeFiles/szi_quant.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lossless/CMakeFiles/szi_lossless.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/metrics/CMakeFiles/szi_metrics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
