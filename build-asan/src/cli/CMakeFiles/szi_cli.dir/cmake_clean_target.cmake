file(REMOVE_RECURSE
  "libszi_cli.a"
)
