# Empty dependencies file for szi_cli.
# This may be replaced when dependencies are built.
