file(REMOVE_RECURSE
  "libszi_huffman.a"
)
