file(REMOVE_RECURSE
  "CMakeFiles/szi_huffman.dir/codebook.cc.o"
  "CMakeFiles/szi_huffman.dir/codebook.cc.o.d"
  "CMakeFiles/szi_huffman.dir/histogram.cc.o"
  "CMakeFiles/szi_huffman.dir/histogram.cc.o.d"
  "CMakeFiles/szi_huffman.dir/huffman.cc.o"
  "CMakeFiles/szi_huffman.dir/huffman.cc.o.d"
  "libszi_huffman.a"
  "libszi_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
