
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/huffman/codebook.cc" "src/huffman/CMakeFiles/szi_huffman.dir/codebook.cc.o" "gcc" "src/huffman/CMakeFiles/szi_huffman.dir/codebook.cc.o.d"
  "/root/repo/src/huffman/histogram.cc" "src/huffman/CMakeFiles/szi_huffman.dir/histogram.cc.o" "gcc" "src/huffman/CMakeFiles/szi_huffman.dir/histogram.cc.o.d"
  "/root/repo/src/huffman/huffman.cc" "src/huffman/CMakeFiles/szi_huffman.dir/huffman.cc.o" "gcc" "src/huffman/CMakeFiles/szi_huffman.dir/huffman.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/quant/CMakeFiles/szi_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
