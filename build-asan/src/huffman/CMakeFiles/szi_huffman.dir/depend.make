# Empty dependencies file for szi_huffman.
# This may be replaced when dependencies are built.
