file(REMOVE_RECURSE
  "libszi_baselines.a"
)
