file(REMOVE_RECURSE
  "CMakeFiles/szi_baselines.dir/cpu_interp.cc.o"
  "CMakeFiles/szi_baselines.dir/cpu_interp.cc.o.d"
  "CMakeFiles/szi_baselines.dir/cusz.cc.o"
  "CMakeFiles/szi_baselines.dir/cusz.cc.o.d"
  "CMakeFiles/szi_baselines.dir/cuszp.cc.o"
  "CMakeFiles/szi_baselines.dir/cuszp.cc.o.d"
  "CMakeFiles/szi_baselines.dir/cuszx.cc.o"
  "CMakeFiles/szi_baselines.dir/cuszx.cc.o.d"
  "CMakeFiles/szi_baselines.dir/cuzfp.cc.o"
  "CMakeFiles/szi_baselines.dir/cuzfp.cc.o.d"
  "CMakeFiles/szi_baselines.dir/fzgpu.cc.o"
  "CMakeFiles/szi_baselines.dir/fzgpu.cc.o.d"
  "CMakeFiles/szi_baselines.dir/registry.cc.o"
  "CMakeFiles/szi_baselines.dir/registry.cc.o.d"
  "CMakeFiles/szi_baselines.dir/sz3.cc.o"
  "CMakeFiles/szi_baselines.dir/sz3.cc.o.d"
  "CMakeFiles/szi_baselines.dir/zfp_codec.cc.o"
  "CMakeFiles/szi_baselines.dir/zfp_codec.cc.o.d"
  "libszi_baselines.a"
  "libszi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
