
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cpu_interp.cc" "src/baselines/CMakeFiles/szi_baselines.dir/cpu_interp.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/cpu_interp.cc.o.d"
  "/root/repo/src/baselines/cusz.cc" "src/baselines/CMakeFiles/szi_baselines.dir/cusz.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/cusz.cc.o.d"
  "/root/repo/src/baselines/cuszp.cc" "src/baselines/CMakeFiles/szi_baselines.dir/cuszp.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/cuszp.cc.o.d"
  "/root/repo/src/baselines/cuszx.cc" "src/baselines/CMakeFiles/szi_baselines.dir/cuszx.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/cuszx.cc.o.d"
  "/root/repo/src/baselines/cuzfp.cc" "src/baselines/CMakeFiles/szi_baselines.dir/cuzfp.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/cuzfp.cc.o.d"
  "/root/repo/src/baselines/fzgpu.cc" "src/baselines/CMakeFiles/szi_baselines.dir/fzgpu.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/fzgpu.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/szi_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/sz3.cc" "src/baselines/CMakeFiles/szi_baselines.dir/sz3.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/sz3.cc.o.d"
  "/root/repo/src/baselines/zfp_codec.cc" "src/baselines/CMakeFiles/szi_baselines.dir/zfp_codec.cc.o" "gcc" "src/baselines/CMakeFiles/szi_baselines.dir/zfp_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/szi_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/predictor/CMakeFiles/szi_predictor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/huffman/CMakeFiles/szi_huffman.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/quant/CMakeFiles/szi_quant.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lossless/CMakeFiles/szi_lossless.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/metrics/CMakeFiles/szi_metrics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
