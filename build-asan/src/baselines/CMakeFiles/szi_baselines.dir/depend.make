# Empty dependencies file for szi_baselines.
# This may be replaced when dependencies are built.
