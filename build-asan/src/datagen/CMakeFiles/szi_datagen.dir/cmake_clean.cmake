file(REMOVE_RECURSE
  "CMakeFiles/szi_datagen.dir/jhtdb.cc.o"
  "CMakeFiles/szi_datagen.dir/jhtdb.cc.o.d"
  "CMakeFiles/szi_datagen.dir/miranda.cc.o"
  "CMakeFiles/szi_datagen.dir/miranda.cc.o.d"
  "CMakeFiles/szi_datagen.dir/nyx.cc.o"
  "CMakeFiles/szi_datagen.dir/nyx.cc.o.d"
  "CMakeFiles/szi_datagen.dir/qmcpack.cc.o"
  "CMakeFiles/szi_datagen.dir/qmcpack.cc.o.d"
  "CMakeFiles/szi_datagen.dir/registry.cc.o"
  "CMakeFiles/szi_datagen.dir/registry.cc.o.d"
  "CMakeFiles/szi_datagen.dir/rtm.cc.o"
  "CMakeFiles/szi_datagen.dir/rtm.cc.o.d"
  "CMakeFiles/szi_datagen.dir/s3d.cc.o"
  "CMakeFiles/szi_datagen.dir/s3d.cc.o.d"
  "CMakeFiles/szi_datagen.dir/synth.cc.o"
  "CMakeFiles/szi_datagen.dir/synth.cc.o.d"
  "libszi_datagen.a"
  "libszi_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
