
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/jhtdb.cc" "src/datagen/CMakeFiles/szi_datagen.dir/jhtdb.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/jhtdb.cc.o.d"
  "/root/repo/src/datagen/miranda.cc" "src/datagen/CMakeFiles/szi_datagen.dir/miranda.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/miranda.cc.o.d"
  "/root/repo/src/datagen/nyx.cc" "src/datagen/CMakeFiles/szi_datagen.dir/nyx.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/nyx.cc.o.d"
  "/root/repo/src/datagen/qmcpack.cc" "src/datagen/CMakeFiles/szi_datagen.dir/qmcpack.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/qmcpack.cc.o.d"
  "/root/repo/src/datagen/registry.cc" "src/datagen/CMakeFiles/szi_datagen.dir/registry.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/registry.cc.o.d"
  "/root/repo/src/datagen/rtm.cc" "src/datagen/CMakeFiles/szi_datagen.dir/rtm.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/rtm.cc.o.d"
  "/root/repo/src/datagen/s3d.cc" "src/datagen/CMakeFiles/szi_datagen.dir/s3d.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/s3d.cc.o.d"
  "/root/repo/src/datagen/synth.cc" "src/datagen/CMakeFiles/szi_datagen.dir/synth.cc.o" "gcc" "src/datagen/CMakeFiles/szi_datagen.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
