file(REMOVE_RECURSE
  "libszi_datagen.a"
)
