# Empty dependencies file for szi_datagen.
# This may be replaced when dependencies are built.
