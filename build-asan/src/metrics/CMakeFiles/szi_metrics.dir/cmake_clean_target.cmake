file(REMOVE_RECURSE
  "libszi_metrics.a"
)
