# Empty dependencies file for szi_metrics.
# This may be replaced when dependencies are built.
