file(REMOVE_RECURSE
  "CMakeFiles/szi_metrics.dir/ssim.cc.o"
  "CMakeFiles/szi_metrics.dir/ssim.cc.o.d"
  "CMakeFiles/szi_metrics.dir/stats.cc.o"
  "CMakeFiles/szi_metrics.dir/stats.cc.o.d"
  "libszi_metrics.a"
  "libszi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
