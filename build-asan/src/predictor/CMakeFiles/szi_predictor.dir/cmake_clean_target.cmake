file(REMOVE_RECURSE
  "libszi_predictor.a"
)
