file(REMOVE_RECURSE
  "CMakeFiles/szi_predictor.dir/autotune.cc.o"
  "CMakeFiles/szi_predictor.dir/autotune.cc.o.d"
  "CMakeFiles/szi_predictor.dir/ginterp.cc.o"
  "CMakeFiles/szi_predictor.dir/ginterp.cc.o.d"
  "CMakeFiles/szi_predictor.dir/lorenzo.cc.o"
  "CMakeFiles/szi_predictor.dir/lorenzo.cc.o.d"
  "libszi_predictor.a"
  "libszi_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
