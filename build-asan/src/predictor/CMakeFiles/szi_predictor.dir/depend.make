# Empty dependencies file for szi_predictor.
# This may be replaced when dependencies are built.
