
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/autotune.cc" "src/predictor/CMakeFiles/szi_predictor.dir/autotune.cc.o" "gcc" "src/predictor/CMakeFiles/szi_predictor.dir/autotune.cc.o.d"
  "/root/repo/src/predictor/ginterp.cc" "src/predictor/CMakeFiles/szi_predictor.dir/ginterp.cc.o" "gcc" "src/predictor/CMakeFiles/szi_predictor.dir/ginterp.cc.o.d"
  "/root/repo/src/predictor/lorenzo.cc" "src/predictor/CMakeFiles/szi_predictor.dir/lorenzo.cc.o" "gcc" "src/predictor/CMakeFiles/szi_predictor.dir/lorenzo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/quant/CMakeFiles/szi_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
