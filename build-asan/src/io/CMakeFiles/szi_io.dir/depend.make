# Empty dependencies file for szi_io.
# This may be replaced when dependencies are built.
