file(REMOVE_RECURSE
  "libszi_io.a"
)
