file(REMOVE_RECURSE
  "CMakeFiles/szi_io.dir/bin_io.cc.o"
  "CMakeFiles/szi_io.dir/bin_io.cc.o.d"
  "CMakeFiles/szi_io.dir/bundle.cc.o"
  "CMakeFiles/szi_io.dir/bundle.cc.o.d"
  "libszi_io.a"
  "libszi_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
