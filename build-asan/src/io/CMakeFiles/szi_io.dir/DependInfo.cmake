
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bin_io.cc" "src/io/CMakeFiles/szi_io.dir/bin_io.cc.o" "gcc" "src/io/CMakeFiles/szi_io.dir/bin_io.cc.o.d"
  "/root/repo/src/io/bundle.cc" "src/io/CMakeFiles/szi_io.dir/bundle.cc.o" "gcc" "src/io/CMakeFiles/szi_io.dir/bundle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
