# CMake generated Testfile for 
# Source directory: /root/repo/src/io
# Build directory: /root/repo/build-asan/src/io
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
