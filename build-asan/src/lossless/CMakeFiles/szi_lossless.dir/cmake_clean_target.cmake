file(REMOVE_RECURSE
  "libszi_lossless.a"
)
