
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lossless/bitshuffle.cc" "src/lossless/CMakeFiles/szi_lossless.dir/bitshuffle.cc.o" "gcc" "src/lossless/CMakeFiles/szi_lossless.dir/bitshuffle.cc.o.d"
  "/root/repo/src/lossless/lzss.cc" "src/lossless/CMakeFiles/szi_lossless.dir/lzss.cc.o" "gcc" "src/lossless/CMakeFiles/szi_lossless.dir/lzss.cc.o.d"
  "/root/repo/src/lossless/rle.cc" "src/lossless/CMakeFiles/szi_lossless.dir/rle.cc.o" "gcc" "src/lossless/CMakeFiles/szi_lossless.dir/rle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
