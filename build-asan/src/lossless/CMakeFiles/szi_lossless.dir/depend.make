# Empty dependencies file for szi_lossless.
# This may be replaced when dependencies are built.
