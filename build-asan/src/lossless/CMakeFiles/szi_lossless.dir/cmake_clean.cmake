file(REMOVE_RECURSE
  "CMakeFiles/szi_lossless.dir/bitshuffle.cc.o"
  "CMakeFiles/szi_lossless.dir/bitshuffle.cc.o.d"
  "CMakeFiles/szi_lossless.dir/lzss.cc.o"
  "CMakeFiles/szi_lossless.dir/lzss.cc.o.d"
  "CMakeFiles/szi_lossless.dir/rle.cc.o"
  "CMakeFiles/szi_lossless.dir/rle.cc.o.d"
  "libszi_lossless.a"
  "libszi_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
