file(REMOVE_RECURSE
  "libszi_device.a"
)
