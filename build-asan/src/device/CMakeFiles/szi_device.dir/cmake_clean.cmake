file(REMOVE_RECURSE
  "CMakeFiles/szi_device.dir/thread_pool.cc.o"
  "CMakeFiles/szi_device.dir/thread_pool.cc.o.d"
  "libszi_device.a"
  "libszi_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
