# Empty dependencies file for szi_device.
# This may be replaced when dependencies are built.
