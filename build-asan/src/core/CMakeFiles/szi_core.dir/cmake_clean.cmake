file(REMOVE_RECURSE
  "CMakeFiles/szi_core.dir/bitcomp_wrapper.cc.o"
  "CMakeFiles/szi_core.dir/bitcomp_wrapper.cc.o.d"
  "CMakeFiles/szi_core.dir/cuszi.cc.o"
  "CMakeFiles/szi_core.dir/cuszi.cc.o.d"
  "CMakeFiles/szi_core.dir/pwrel_wrapper.cc.o"
  "CMakeFiles/szi_core.dir/pwrel_wrapper.cc.o.d"
  "libszi_core.a"
  "libszi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
