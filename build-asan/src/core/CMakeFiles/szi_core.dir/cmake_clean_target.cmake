file(REMOVE_RECURSE
  "libszi_core.a"
)
