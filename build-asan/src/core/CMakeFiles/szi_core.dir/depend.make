# Empty dependencies file for szi_core.
# This may be replaced when dependencies are built.
