# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("device")
subdirs("io")
subdirs("metrics")
subdirs("datagen")
subdirs("quant")
subdirs("predictor")
subdirs("huffman")
subdirs("lossless")
subdirs("core")
subdirs("baselines")
subdirs("transfer")
subdirs("cli")
