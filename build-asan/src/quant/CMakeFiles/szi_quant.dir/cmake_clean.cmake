file(REMOVE_RECURSE
  "CMakeFiles/szi_quant.dir/outlier.cc.o"
  "CMakeFiles/szi_quant.dir/outlier.cc.o.d"
  "libszi_quant.a"
  "libszi_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szi_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
