# Empty dependencies file for szi_quant.
# This may be replaced when dependencies are built.
