file(REMOVE_RECURSE
  "libszi_quant.a"
)
