
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_huffman.cc" "tests/CMakeFiles/test_huffman.dir/test_huffman.cc.o" "gcc" "tests/CMakeFiles/test_huffman.dir/test_huffman.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/huffman/CMakeFiles/szi_huffman.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/datagen/CMakeFiles/szi_datagen.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/quant/CMakeFiles/szi_quant.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/device/CMakeFiles/szi_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
