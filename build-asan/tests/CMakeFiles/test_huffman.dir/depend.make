# Empty dependencies file for test_huffman.
# This may be replaced when dependencies are built.
