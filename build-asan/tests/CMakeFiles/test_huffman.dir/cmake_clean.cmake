file(REMOVE_RECURSE
  "CMakeFiles/test_huffman.dir/test_huffman.cc.o"
  "CMakeFiles/test_huffman.dir/test_huffman.cc.o.d"
  "test_huffman"
  "test_huffman.pdb"
  "test_huffman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
