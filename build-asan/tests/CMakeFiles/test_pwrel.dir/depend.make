# Empty dependencies file for test_pwrel.
# This may be replaced when dependencies are built.
