file(REMOVE_RECURSE
  "CMakeFiles/test_pwrel.dir/test_pwrel.cc.o"
  "CMakeFiles/test_pwrel.dir/test_pwrel.cc.o.d"
  "test_pwrel"
  "test_pwrel.pdb"
  "test_pwrel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwrel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
