file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_decode.dir/test_fuzz_decode.cc.o"
  "CMakeFiles/test_fuzz_decode.dir/test_fuzz_decode.cc.o.d"
  "test_fuzz_decode"
  "test_fuzz_decode.pdb"
  "test_fuzz_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
