# Empty dependencies file for test_fuzz_decode.
# This may be replaced when dependencies are built.
