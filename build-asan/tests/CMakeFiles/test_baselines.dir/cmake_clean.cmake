file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/test_baselines.cc.o"
  "CMakeFiles/test_baselines.dir/test_baselines.cc.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
