file(REMOVE_RECURSE
  "CMakeFiles/test_corruption.dir/test_corruption.cc.o"
  "CMakeFiles/test_corruption.dir/test_corruption.cc.o.d"
  "test_corruption"
  "test_corruption.pdb"
  "test_corruption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
