# Empty dependencies file for test_corruption.
# This may be replaced when dependencies are built.
