file(REMOVE_RECURSE
  "CMakeFiles/test_invariants.dir/test_invariants.cc.o"
  "CMakeFiles/test_invariants.dir/test_invariants.cc.o.d"
  "test_invariants"
  "test_invariants.pdb"
  "test_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
