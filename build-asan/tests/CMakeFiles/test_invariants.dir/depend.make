# Empty dependencies file for test_invariants.
# This may be replaced when dependencies are built.
