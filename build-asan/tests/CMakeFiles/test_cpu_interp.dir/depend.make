# Empty dependencies file for test_cpu_interp.
# This may be replaced when dependencies are built.
