file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_interp.dir/test_cpu_interp.cc.o"
  "CMakeFiles/test_cpu_interp.dir/test_cpu_interp.cc.o.d"
  "test_cpu_interp"
  "test_cpu_interp.pdb"
  "test_cpu_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
