# Empty dependencies file for test_zfp.
# This may be replaced when dependencies are built.
