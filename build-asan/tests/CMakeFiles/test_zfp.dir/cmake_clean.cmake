file(REMOVE_RECURSE
  "CMakeFiles/test_zfp.dir/test_zfp.cc.o"
  "CMakeFiles/test_zfp.dir/test_zfp.cc.o.d"
  "test_zfp"
  "test_zfp.pdb"
  "test_zfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
