# Empty dependencies file for test_cuszi.
# This may be replaced when dependencies are built.
