file(REMOVE_RECURSE
  "CMakeFiles/test_cuszi.dir/test_cuszi.cc.o"
  "CMakeFiles/test_cuszi.dir/test_cuszi.cc.o.d"
  "test_cuszi"
  "test_cuszi.pdb"
  "test_cuszi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuszi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
