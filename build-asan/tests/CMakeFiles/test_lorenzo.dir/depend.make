# Empty dependencies file for test_lorenzo.
# This may be replaced when dependencies are built.
