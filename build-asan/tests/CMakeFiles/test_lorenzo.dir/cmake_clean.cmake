file(REMOVE_RECURSE
  "CMakeFiles/test_lorenzo.dir/test_lorenzo.cc.o"
  "CMakeFiles/test_lorenzo.dir/test_lorenzo.cc.o.d"
  "test_lorenzo"
  "test_lorenzo.pdb"
  "test_lorenzo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lorenzo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
