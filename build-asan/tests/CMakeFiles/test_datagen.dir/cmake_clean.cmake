file(REMOVE_RECURSE
  "CMakeFiles/test_datagen.dir/test_datagen.cc.o"
  "CMakeFiles/test_datagen.dir/test_datagen.cc.o.d"
  "test_datagen"
  "test_datagen.pdb"
  "test_datagen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
