# Empty dependencies file for test_datagen.
# This may be replaced when dependencies are built.
