# Empty dependencies file for test_config.
# This may be replaced when dependencies are built.
