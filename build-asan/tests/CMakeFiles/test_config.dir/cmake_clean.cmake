file(REMOVE_RECURSE
  "CMakeFiles/test_config.dir/test_config.cc.o"
  "CMakeFiles/test_config.dir/test_config.cc.o.d"
  "test_config"
  "test_config.pdb"
  "test_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
