file(REMOVE_RECURSE
  "CMakeFiles/test_cuszi_f64.dir/test_cuszi_f64.cc.o"
  "CMakeFiles/test_cuszi_f64.dir/test_cuszi_f64.cc.o.d"
  "test_cuszi_f64"
  "test_cuszi_f64.pdb"
  "test_cuszi_f64[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuszi_f64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
