# Empty dependencies file for test_cuszi_f64.
# This may be replaced when dependencies are built.
