file(REMOVE_RECURSE
  "CMakeFiles/test_lossless.dir/test_lossless.cc.o"
  "CMakeFiles/test_lossless.dir/test_lossless.cc.o.d"
  "test_lossless"
  "test_lossless.pdb"
  "test_lossless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
