# Empty dependencies file for test_lossless.
# This may be replaced when dependencies are built.
