# Empty dependencies file for test_ginterp.
# This may be replaced when dependencies are built.
