file(REMOVE_RECURSE
  "CMakeFiles/test_ginterp.dir/test_ginterp.cc.o"
  "CMakeFiles/test_ginterp.dir/test_ginterp.cc.o.d"
  "test_ginterp"
  "test_ginterp.pdb"
  "test_ginterp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ginterp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
