file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cc.o"
  "CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cc.o.d"
  "test_parallel_determinism"
  "test_parallel_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
