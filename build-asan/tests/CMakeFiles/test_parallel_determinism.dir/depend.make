# Empty dependencies file for test_parallel_determinism.
# This may be replaced when dependencies are built.
