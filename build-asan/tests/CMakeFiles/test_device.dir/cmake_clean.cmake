file(REMOVE_RECURSE
  "CMakeFiles/test_device.dir/test_device.cc.o"
  "CMakeFiles/test_device.dir/test_device.cc.o.d"
  "test_device"
  "test_device.pdb"
  "test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
