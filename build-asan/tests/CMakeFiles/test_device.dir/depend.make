# Empty dependencies file for test_device.
# This may be replaced when dependencies are built.
