# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-asan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-asan/examples/quickstart" "miranda" "1e-2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataset_archive "/root/repo/build-asan/examples/dataset_archive" "rtm" "1e-2" "example_test.szib")
set_tests_properties(example_dataset_archive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_field_analysis "/root/repo/build-asan/examples/field_analysis" ".")
set_tests_properties(example_field_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
