file(REMOVE_RECURSE
  "CMakeFiles/dataset_archive.dir/dataset_archive.cpp.o"
  "CMakeFiles/dataset_archive.dir/dataset_archive.cpp.o.d"
  "dataset_archive"
  "dataset_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
