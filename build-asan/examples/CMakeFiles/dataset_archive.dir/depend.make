# Empty dependencies file for dataset_archive.
# This may be replaced when dependencies are built.
