# Empty dependencies file for insitu_compression.
# This may be replaced when dependencies are built.
