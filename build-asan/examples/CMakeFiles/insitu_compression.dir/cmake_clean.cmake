file(REMOVE_RECURSE
  "CMakeFiles/insitu_compression.dir/insitu_compression.cpp.o"
  "CMakeFiles/insitu_compression.dir/insitu_compression.cpp.o.d"
  "insitu_compression"
  "insitu_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
