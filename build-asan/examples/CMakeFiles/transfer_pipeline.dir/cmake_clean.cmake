file(REMOVE_RECURSE
  "CMakeFiles/transfer_pipeline.dir/transfer_pipeline.cpp.o"
  "CMakeFiles/transfer_pipeline.dir/transfer_pipeline.cpp.o.d"
  "transfer_pipeline"
  "transfer_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
