# Empty dependencies file for transfer_pipeline.
# This may be replaced when dependencies are built.
