# Empty dependencies file for field_analysis.
# This may be replaced when dependencies are built.
