file(REMOVE_RECURSE
  "CMakeFiles/field_analysis.dir/field_analysis.cpp.o"
  "CMakeFiles/field_analysis.dir/field_analysis.cpp.o.d"
  "field_analysis"
  "field_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
