# Empty dependencies file for fig7.
# This may be replaced when dependencies are built.
