file(REMOVE_RECURSE
  "CMakeFiles/fig7.dir/fig7.cc.o"
  "CMakeFiles/fig7.dir/fig7.cc.o.d"
  "fig7"
  "fig7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
