# Empty dependencies file for ablation_autotune.
# This may be replaced when dependencies are built.
