file(REMOVE_RECURSE
  "CMakeFiles/ablation_autotune.dir/ablation_autotune.cc.o"
  "CMakeFiles/ablation_autotune.dir/ablation_autotune.cc.o.d"
  "ablation_autotune"
  "ablation_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
