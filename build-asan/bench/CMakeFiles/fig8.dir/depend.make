# Empty dependencies file for fig8.
# This may be replaced when dependencies are built.
