file(REMOVE_RECURSE
  "CMakeFiles/fig8.dir/fig8.cc.o"
  "CMakeFiles/fig8.dir/fig8.cc.o.d"
  "fig8"
  "fig8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
