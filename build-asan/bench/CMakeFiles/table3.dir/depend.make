# Empty dependencies file for table3.
# This may be replaced when dependencies are built.
