file(REMOVE_RECURSE
  "CMakeFiles/table3.dir/table3.cc.o"
  "CMakeFiles/table3.dir/table3.cc.o.d"
  "table3"
  "table3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
