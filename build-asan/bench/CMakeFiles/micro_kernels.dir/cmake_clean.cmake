file(REMOVE_RECURSE
  "CMakeFiles/micro_kernels.dir/micro_kernels.cc.o"
  "CMakeFiles/micro_kernels.dir/micro_kernels.cc.o.d"
  "micro_kernels"
  "micro_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
