file(REMOVE_RECURSE
  "CMakeFiles/fig10.dir/fig10.cc.o"
  "CMakeFiles/fig10.dir/fig10.cc.o.d"
  "fig10"
  "fig10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
