# Empty dependencies file for fig10.
# This may be replaced when dependencies are built.
