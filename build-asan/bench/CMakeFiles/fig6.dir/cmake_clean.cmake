file(REMOVE_RECURSE
  "CMakeFiles/fig6.dir/fig6.cc.o"
  "CMakeFiles/fig6.dir/fig6.cc.o.d"
  "fig6"
  "fig6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
