# Empty dependencies file for fig6.
# This may be replaced when dependencies are built.
