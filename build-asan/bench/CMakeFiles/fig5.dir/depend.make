# Empty dependencies file for fig5.
# This may be replaced when dependencies are built.
