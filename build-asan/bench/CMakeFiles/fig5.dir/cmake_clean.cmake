file(REMOVE_RECURSE
  "CMakeFiles/fig5.dir/fig5.cc.o"
  "CMakeFiles/fig5.dir/fig5.cc.o.d"
  "fig5"
  "fig5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
