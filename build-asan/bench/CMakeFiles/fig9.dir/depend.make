# Empty dependencies file for fig9.
# This may be replaced when dependencies are built.
