file(REMOVE_RECURSE
  "CMakeFiles/fig9.dir/fig9.cc.o"
  "CMakeFiles/fig9.dir/fig9.cc.o.d"
  "fig9"
  "fig9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
